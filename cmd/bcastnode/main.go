// Command bcastnode runs one live broadcast-protocol node: the same engine
// the simulator and the in-process live cluster run (internal/runtime), as a
// standalone process speaking maelstrom-style JSON envelopes.
//
// Transport is either a duplex stream on stdin/stdout — newline-framed by
// default (maelstrom-compatible), or length-prefixed with -framing length —
// where a harness routes envelopes between processes; or UDP with -udp,
// where each envelope is one datagram sent directly to its peer.
//
// The message protocol, all wrapped as {"src","dest","body":{...}}:
//
//	init       {"type":"init","node_id":"n1","node_ids":["n0","n1",...]}
//	topology   {"type":"topology","topology":{"n0":["n1"],...}}  (full adjacency)
//	broadcast  {"type":"broadcast","message":42}   start a wave at this node
//	read       {"type":"read"}                     -> read_ok {"messages":[...]}
//	status     {"type":"status"}                   -> status_ok (delivered, forwarded, nacks)
//	pkt/nack/garble                                 inter-node protocol traffic
//
// Usage:
//
//	bcastnode -proto generic-fr -hops 2                       # stdin/stdout
//	bcastnode -udp :7001 -peers n0=10.0.0.1:7001,n2=... -recovery
//	bcastnode -udp :7001 -peers ... -rate 0.01 -horizon 400   # self-injecting traffic source
//	bcastnode -udp :0 -journal state -hello-interval 5        # crash-recoverable node
//
// With -rate every node becomes a traffic source: after the first topology it
// replays its own per-source stream of the shared deterministic traffic plan
// (internal/traffic; all nodes sources at -rate messages per time unit over
// -horizon units), starting each arrival as a broadcast wave with a message
// id at or above 2^32 (harness ids below that never collide).
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcastnode:", err)
		os.Exit(1)
	}
}

var metrics = map[string]view.Metric{
	"id":     view.MetricID,
	"degree": view.MetricDegree,
	"ncr":    view.MetricNCR,
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcastnode", flag.ContinueOnError)
	var (
		proto     = fs.String("proto", "generic-fr", "protocol: "+strings.Join(protocol.Names(), ", "))
		hops      = fs.Int("hops", 2, "k-hop view depth (0 = global)")
		metric    = fs.String("metric", "id", "priority metric: id, degree, ncr")
		framing   = fs.String("framing", "line", "stdio framing: line (maelstrom-compatible) or length (4-byte big-endian prefix)")
		udp       = fs.String("udp", "", "listen for UDP datagrams on this address instead of stdin/stdout")
		peers     = fs.String("peers", "", "comma-separated name=host:port peer addresses (UDP mode)")
		timescale = fs.Duration("timescale", 10*time.Millisecond, "wall-clock duration of one protocol time unit")
		recovery  = fs.Bool("recovery", false, "enable the NACK retry/backoff recovery layer")
		budget    = fs.Int("retry-budget", 3, "recovery retransmissions per (sender, receiver) link")
		seed      = fs.Int64("seed", 1, "seed of the node's private backoff streams")
		rate      = fs.Float64("rate", 0, "self-inject broadcast sessions at this per-node Poisson rate (messages per time unit); 0 disables the generator")
		horizon   = fs.Float64("horizon", 400, "traffic generation horizon in time units for -rate")
		journal   = fs.String("journal", "", "write-ahead journal directory for crash recovery; the node journals to <dir>/<name>.journal and replays it on restart")
		helloInt  = fs.Float64("hello-interval", 0, "dynamic hello beacon interval in time units; 0 disables beacons and rejoin maintenance")
		helloExp  = fs.Float64("hello-expiry", 0, "staleness expiry of a neighbor's hello clock in time units (default 3x the interval)")
		helloLoss = fs.Float64("hello-loss", 0, "independent per-beacon loss probability in [0,1), drawn from the seed's pure hash schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateFlags(fs); err != nil {
		return err
	}
	mk, ok := protocol.ByName(*proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (valid: %s)", *proto, strings.Join(protocol.Names(), ", "))
	}
	m, ok := metrics[strings.ToLower(*metric)]
	if !ok {
		return fmt.Errorf("unknown metric %q (valid: id, degree, ncr)", *metric)
	}
	cfg := NodeConfig{
		Protocol:       mk,
		Hops:           *hops,
		Metric:         m,
		TimeScale:      *timescale,
		NACKRecovery:   *recovery,
		RetryBudget:    *budget,
		Seed:           *seed,
		Rate:           *rate,
		TrafficHorizon: *horizon,
		JournalDir:     *journal,
		HelloInterval:  *helloInt,
		HelloExpiry:    *helloExp,
		HelloLossRate:  *helloLoss,
	}

	var w wire
	if *udp != "" {
		addr, err := net.ResolveUDPAddr("udp", *udp)
		if err != nil {
			return fmt.Errorf("-udp %q: %w", *udp, err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		peerAddrs, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		// The bound address (with the kernel-chosen port for ":0") goes to
		// stdout, which UDP mode otherwise never writes: a supervisor
		// respawning nodes on ephemeral ports reads it to rewire peers.
		fmt.Printf("udp %s\n", conn.LocalAddr())
		w = newUDPWire(conn, peerAddrs)
	} else {
		var fr framer
		switch *framing {
		case "line":
			fr = newLineFramer(os.Stdin, os.Stdout)
		case "length":
			fr = &lengthFramer{r: os.Stdin, w: os.Stdout}
		default:
			return fmt.Errorf("unknown framing %q (valid: line, length)", *framing)
		}
		w = &stdioWire{fr: fr}
	}

	node, err := NewNode(cfg, w)
	if err != nil {
		return err
	}
	return node.Run()
}

// validateFlags rejects invalid values and mutually-exclusive combinations up
// front, before any socket is bound or journal opened, so a misconfigured
// node dies with a descriptive error instead of limping or hanging. "Set"
// means explicitly passed on the command line (fs.Visit), so defaulted values
// never trip a combination check.
func validateFlags(fs *flag.FlagSet) error {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	get := func(name string) string { return fs.Lookup(name).Value.String() }
	getF := func(name string) float64 {
		v, _ := strconv.ParseFloat(get(name), 64)
		return v
	}

	if set["peers"] && !set["udp"] {
		return fmt.Errorf("-peers requires -udp: stdio framing has no peer addresses (the harness routes envelopes)")
	}
	if set["framing"] && set["udp"] {
		return fmt.Errorf("-framing and -udp are mutually exclusive: UDP sends one datagram per envelope and does not frame a stream")
	}
	if set["retry-budget"] && !set["recovery"] {
		return fmt.Errorf("-retry-budget requires -recovery: without the NACK recovery layer there are no retransmissions to budget")
	}
	if ts, err := time.ParseDuration(get("timescale")); err != nil || ts <= 0 {
		return fmt.Errorf("-timescale must be a positive duration, got %s", get("timescale"))
	}

	rate, hor := getF("rate"), getF("horizon")
	if rate < 0 || math.IsNaN(rate) {
		return fmt.Errorf("-rate must be >= 0, got %v", rate)
	}
	if set["rate"] && rate > 0 && !set["horizon"] {
		return fmt.Errorf("-rate requires an explicit -horizon: a traffic source must state how long it generates")
	}
	if set["horizon"] && !set["rate"] {
		return fmt.Errorf("-horizon requires -rate: without a traffic rate there is no generation to bound")
	}
	if set["horizon"] && (hor <= 0 || math.IsNaN(hor)) {
		return fmt.Errorf("-horizon must be > 0, got %v", hor)
	}

	hi, he, hl := getF("hello-interval"), getF("hello-expiry"), getF("hello-loss")
	if hi < 0 || math.IsNaN(hi) {
		return fmt.Errorf("-hello-interval must be >= 0, got %v", hi)
	}
	if set["hello-expiry"] && !set["hello-interval"] {
		return fmt.Errorf("-hello-expiry requires -hello-interval: without beacons there is no staleness clock to expire")
	}
	if set["hello-expiry"] && (he <= 0 || math.IsNaN(he)) {
		return fmt.Errorf("-hello-expiry must be > 0, got %v", he)
	}
	if set["hello-loss"] && !set["hello-interval"] {
		return fmt.Errorf("-hello-loss requires -hello-interval: without beacons there is nothing to lose")
	}
	if hl < 0 || hl >= 1 || math.IsNaN(hl) {
		return fmt.Errorf("-hello-loss must be in [0,1), got %v", hl)
	}

	if dir := get("journal"); dir != "" {
		if err := validateWritableDir(dir); err != nil {
			return fmt.Errorf("-journal: %w", err)
		}
	}
	return nil
}

// validateWritableDir creates dir if needed and proves it writable by
// creating and removing a probe file.
func validateWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

func parsePeers(s string) (map[string]*net.UDPAddr, error) {
	peers := make(map[string]*net.UDPAddr)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-peers entry %q is not name=host:port", part)
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("-peers %s: %w", name, err)
		}
		peers[name] = ua
	}
	return peers, nil
}
