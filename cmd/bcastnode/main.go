// Command bcastnode runs one live broadcast-protocol node: the same engine
// the simulator and the in-process live cluster run (internal/runtime), as a
// standalone process speaking maelstrom-style JSON envelopes.
//
// Transport is either a duplex stream on stdin/stdout — newline-framed by
// default (maelstrom-compatible), or length-prefixed with -framing length —
// where a harness routes envelopes between processes; or UDP with -udp,
// where each envelope is one datagram sent directly to its peer.
//
// The message protocol, all wrapped as {"src","dest","body":{...}}:
//
//	init       {"type":"init","node_id":"n1","node_ids":["n0","n1",...]}
//	topology   {"type":"topology","topology":{"n0":["n1"],...}}  (full adjacency)
//	broadcast  {"type":"broadcast","message":42}   start a wave at this node
//	read       {"type":"read"}                     -> read_ok {"messages":[...]}
//	status     {"type":"status"}                   -> status_ok (delivered, forwarded, nacks)
//	pkt/nack/garble                                 inter-node protocol traffic
//
// Usage:
//
//	bcastnode -proto generic-fr -hops 2                       # stdin/stdout
//	bcastnode -udp :7001 -peers n0=10.0.0.1:7001,n2=... -recovery
//	bcastnode -udp :7001 -peers ... -rate 0.01                # self-injecting traffic source
//
// With -rate every node becomes a traffic source: after the first topology it
// replays its own per-source stream of the shared deterministic traffic plan
// (internal/traffic; all nodes sources at -rate messages per time unit over
// -horizon units), starting each arrival as a broadcast wave with a message
// id at or above 2^32 (harness ids below that never collide).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/view"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcastnode:", err)
		os.Exit(1)
	}
}

var metrics = map[string]view.Metric{
	"id":     view.MetricID,
	"degree": view.MetricDegree,
	"ncr":    view.MetricNCR,
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcastnode", flag.ContinueOnError)
	var (
		proto     = fs.String("proto", "generic-fr", "protocol: "+strings.Join(protocol.Names(), ", "))
		hops      = fs.Int("hops", 2, "k-hop view depth (0 = global)")
		metric    = fs.String("metric", "id", "priority metric: id, degree, ncr")
		framing   = fs.String("framing", "line", "stdio framing: line (maelstrom-compatible) or length (4-byte big-endian prefix)")
		udp       = fs.String("udp", "", "listen for UDP datagrams on this address instead of stdin/stdout")
		peers     = fs.String("peers", "", "comma-separated name=host:port peer addresses (UDP mode)")
		timescale = fs.Duration("timescale", 10*time.Millisecond, "wall-clock duration of one protocol time unit")
		recovery  = fs.Bool("recovery", false, "enable the NACK retry/backoff recovery layer")
		budget    = fs.Int("retry-budget", 3, "recovery retransmissions per (sender, receiver) link")
		seed      = fs.Int64("seed", 1, "seed of the node's private backoff streams")
		rate      = fs.Float64("rate", 0, "self-inject broadcast sessions at this per-node Poisson rate (messages per time unit); 0 disables the generator")
		horizon   = fs.Float64("horizon", 400, "traffic generation horizon in time units for -rate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mk, ok := protocol.ByName(*proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (valid: %s)", *proto, strings.Join(protocol.Names(), ", "))
	}
	m, ok := metrics[strings.ToLower(*metric)]
	if !ok {
		return fmt.Errorf("unknown metric %q (valid: id, degree, ncr)", *metric)
	}
	cfg := NodeConfig{
		Protocol:       mk,
		Hops:           *hops,
		Metric:         m,
		TimeScale:      *timescale,
		NACKRecovery:   *recovery,
		RetryBudget:    *budget,
		Seed:           *seed,
		Rate:           *rate,
		TrafficHorizon: *horizon,
	}

	var w wire
	if *udp != "" {
		addr, err := net.ResolveUDPAddr("udp", *udp)
		if err != nil {
			return fmt.Errorf("-udp %q: %w", *udp, err)
		}
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		peerAddrs, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		w = newUDPWire(conn, peerAddrs)
	} else {
		var fr framer
		switch *framing {
		case "line":
			fr = newLineFramer(os.Stdin, os.Stdout)
		case "length":
			fr = &lengthFramer{r: os.Stdin, w: os.Stdout}
		default:
			return fmt.Errorf("unknown framing %q (valid: line, length)", *framing)
		}
		w = &stdioWire{fr: fr}
	}

	node, err := NewNode(cfg, w)
	if err != nil {
		return err
	}
	return node.Run()
}

func parsePeers(s string) (map[string]*net.UDPAddr, error) {
	peers := make(map[string]*net.UDPAddr)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-peers entry %q is not name=host:port", part)
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("-peers %s: %w", name, err)
		}
		peers[name] = ua
	}
	return peers, nil
}
