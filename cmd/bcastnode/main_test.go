package main

import (
	"strings"
	"testing"
)

// TestFlagValidationFailsFast: invalid values and mutually-exclusive flag
// combinations must abort with a descriptive error before any socket is bound
// or journal opened — a node that would misbehave must refuse to start.
func TestFlagValidationFailsFast(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring the error must mention
	}{
		{"peers without udp", []string{"-peers", "n1=127.0.0.1:7001"}, "-peers"},
		{"framing with udp", []string{"-framing", "length", "-udp", ":0"}, "-framing"},
		{"retry budget without recovery", []string{"-retry-budget", "5"}, "-retry-budget"},
		{"zero timescale", []string{"-timescale", "0s"}, "-timescale"},
		{"negative timescale", []string{"-timescale", "-1ms"}, "-timescale"},
		{"negative rate", []string{"-rate", "-0.5"}, "-rate"},
		{"rate without horizon", []string{"-rate", "0.1"}, "-horizon"},
		{"horizon without rate", []string{"-horizon", "100"}, "-horizon"},
		{"nonpositive horizon", []string{"-rate", "0.1", "-horizon", "0"}, "-horizon"},
		{"hello expiry without interval", []string{"-hello-expiry", "10"}, "-hello-expiry"},
		{"hello loss without interval", []string{"-hello-loss", "0.1"}, "-hello-loss"},
		{"negative hello interval", []string{"-hello-interval", "-1"}, "-hello-interval"},
		{"nonpositive hello expiry", []string{"-hello-interval", "5", "-hello-expiry", "0"}, "-hello-expiry"},
		{"hello loss out of range", []string{"-hello-interval", "5", "-hello-loss", "1.5"}, "-hello-loss"},
		{"unwritable journal dir", []string{"-journal", "/dev/null/state"}, "-journal"},
		{"unknown protocol", []string{"-proto", "no-such-proto"}, "protocol"},
		{"unknown metric", []string{"-metric", "no-such-metric"}, "metric"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want fail-fast error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}
