package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"adhocbcast/internal/obsv"
	"adhocbcast/internal/sim"
)

// The write-ahead journal makes one node's broadcast state survive process
// death (see docs/recovery.md for the normative format). It is a JSONL
// append-only file of journalOp records, durable via obsv.AppendFile: the
// node batches one fsync per handled envelope, except that a "forward"
// record is always synced before the forwarded datagrams leave the socket —
// the write-ahead rule that makes "zero duplicate forwards after replay" an
// invariant rather than a race. A reader tolerates a torn final line (the
// only damage a crash mid-append can cause).

// journalOp is one journal record. Op selects the kind; the other fields are
// per-kind and omitted when unused.
type journalOp struct {
	// Op is "boot", "source", "deliver", "forward", "nack", or "nack_done".
	Op string `json:"op"`
	// Msg identifies the broadcast wave (all ops except boot).
	Msg int64 `json:"msg,omitempty"`
	// From is the peer node: the copy's sender (deliver) or the NACKing
	// receiver (nack, nack_done).
	From int `json:"from,omitempty"`
	// Attempt is the recovery attempt of a nack / nack_done pair.
	Attempt int `json:"attempt,omitempty"`
	// Packet carries the delivered copy (deliver) or the transmitted packet
	// (forward), so replay can restore retransmission state.
	Packet *sim.Packet `json:"packet,omitempty"`
}

// journal is the node's open write-ahead log.
type journal struct {
	af    *obsv.AppendFile
	dirty bool
}

// openJournal reads the ops a previous life left in path (tolerating a torn
// final line), then opens the file for appending and records a boot op. It
// returns the prior ops for replay and the total boot count including this
// one.
func openJournal(path string) (*journal, []journalOp, int, error) {
	var ops []journalOp
	boots := 0
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var op journalOp
			if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
				// A torn final record is the expected crash artifact; its
				// write never became durable, so dropping it (and anything
				// after, which cannot exist in a well-formed log) is safe.
				break
			}
			if op.Op == "boot" {
				boots++
				continue
			}
			ops = append(ops, op)
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	af, err := obsv.OpenAppend(path)
	if err != nil {
		return nil, nil, 0, err
	}
	j := &journal{af: af}
	boots++
	if err := j.append(journalOp{Op: "boot"}); err != nil {
		af.Close()
		return nil, nil, 0, err
	}
	if err := j.sync(); err != nil {
		af.Close()
		return nil, nil, 0, err
	}
	return j, ops, boots, nil
}

// append buffers one record for the next sync.
func (j *journal) append(op journalOp) error {
	b, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.af.Write(append(b, '\n')); err != nil {
		return err
	}
	j.dirty = true
	return nil
}

// sync makes everything appended so far durable.
func (j *journal) sync() error {
	if !j.dirty {
		return nil
	}
	j.dirty = false
	return j.af.Sync()
}
