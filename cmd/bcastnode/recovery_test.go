package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// countOps reads a journal file and counts records with the given op (and,
// when msg >= 0, matching message id).
func countOps(t *testing.T, path, op string, msg int64) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal %s: %v", path, err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec journalOp
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn final line
		}
		if rec.Op == op && (msg < 0 || rec.Msg == msg) {
			n++
		}
	}
	return n
}

// journalContains polls until the journal file holds at least one record of
// the given op, proving the record is durable on disk.
func journalContains(t *testing.T, path, op string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil && countOps(t, path, op, -1) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("journal %s never recorded a %q op", path, op)
}

// TestJournalReplayNoDuplicateForward kills a 2-node network after a
// completed wave (pipes just end, as a SIGKILL looks to the peer) and brings
// up a successor on the same journal directory: both nodes must replay to the
// delivered state, the journals must hold exactly one forward record each
// (replay restored the transmissions instead of re-running them), and
// re-broadcasting the same message must not add another.
func TestJournalReplayNoDuplicateForward(t *testing.T) {
	dir := t.TempDir()
	cfg := NodeConfig{
		Protocol:   protocol.Flooding,
		TimeScale:  time.Millisecond,
		JournalDir: dir,
	}
	h := newHarness(t, 2, cfg, nil)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(7)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	h.waitDelivered("n0", 7)
	h.waitDelivered("n1", 7)
	// Both forwards must be durable before the kill (write-ahead rule).
	journalContains(t, filepath.Join(dir, "n0.journal"), "forward")
	journalContains(t, filepath.Join(dir, "n1.journal"), "forward")
	h.close()

	h2 := newHarness(t, 2, cfg, nil)
	h2.initAll()
	h2.topologyAll(pathAdjacency(h2.names))
	for _, name := range h2.names {
		b := h2.rpc(name, body{Type: "status"})
		if b.Boots != 2 || b.Replays != 1 {
			t.Errorf("%s: boots=%d replays=%d, want 2/1", name, b.Boots, b.Replays)
		}
		found := false
		for _, m := range b.Messages {
			if m == 7 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s lost message 7 across the restart: %+v", name, b)
		}
	}
	// A replayed node must not re-forward, not even when the wave is
	// re-injected.
	if b := h2.rpc("n0", body{Type: "broadcast", Message: msgRef(7)}); b.Type != "broadcast_ok" {
		t.Fatalf("re-broadcast: got %+v", b)
	}
	time.Sleep(100 * time.Millisecond)
	h2.close()
	for _, name := range []string{"n0", "n1"} {
		if got := countOps(t, filepath.Join(dir, name+".journal"), "forward", 7); got != 1 {
			t.Errorf("%s journal holds %d forward records for message 7, want exactly 1", name, got)
		}
	}
}

// TestRestartMidNACK is the crash window the journal exists for: n1 detects a
// garbled copy and NACKs n0; n0 journals the obligation and dies before the
// (deliberately huge) retry backoff elapses. The successor process must honor
// the journaled obligation — retransmit without re-forwarding — and a
// seed-matched simulator run of the same loss-and-recovery wave must agree on
// the outcome (everyone delivers, both nodes forward), making the crash
// semantically invisible.
func TestRestartMidNACK(t *testing.T) {
	dir := t.TempDir()
	var dropped int32
	filter := func(env envelope) []envelope {
		if env.Src == "n0" && env.Dest == "n1" && env.Body.Type == "pkt" &&
			atomic.CompareAndSwapInt32(&dropped, 0, 1) {
			g := env
			g.Body = body{Type: "garble", From: env.Body.From, Attempt: env.Body.Attempt, Message: env.Body.Message}
			return []envelope{g}
		}
		return []envelope{env}
	}
	h := newHarness(t, 2, NodeConfig{
		Protocol:     protocol.Flooding,
		TimeScale:    time.Millisecond,
		NACKRecovery: true,
		RetryBackoff: 1e6, // the retransmit must not fire in this life
		JournalDir:   dir,
	}, filter)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(3)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	// Wait for the NACK obligation to be durable at n0, then kill everything.
	journalContains(t, filepath.Join(dir, "n0.journal"), "nack")
	h.close()
	if got := countOps(t, filepath.Join(dir, "n0.journal"), "nack_done", -1); got != 0 {
		t.Fatalf("n0 retransmitted before the kill (%d nack_done records); the crash window closed", got)
	}

	// Successor life: default (short) backoff. Replay must find the unmet
	// obligation and retransmit from the restored sent packet.
	h2 := newHarness(t, 2, NodeConfig{
		Protocol:     protocol.Flooding,
		TimeScale:    time.Millisecond,
		NACKRecovery: true,
		JournalDir:   dir,
	}, nil)
	h2.initAll()
	h2.topologyAll(pathAdjacency(h2.names))
	h2.waitDelivered("n1", 3)
	h2.waitDelivered("n0", 3)
	time.Sleep(50 * time.Millisecond)
	h2.close()
	if got := countOps(t, filepath.Join(dir, "n0.journal"), "forward", 3); got != 1 {
		t.Errorf("n0 journal holds %d forward records, want exactly 1 (no duplicate forward across replay)", got)
	}
	if got := countOps(t, filepath.Join(dir, "n0.journal"), "nack_done", -1); got == 0 {
		t.Error("n0 never honored the journaled NACK obligation")
	}
	liveForwards := 0
	for _, name := range []string{"n0", "n1"} {
		liveForwards += countOps(t, filepath.Join(dir, name+".journal"), "forward", 3)
	}

	// Seed-matched simulator arm: the same wave shape — first copy n0->n1
	// lost detectably, recovered by NACK retransmission — without any crash.
	// Crash recovery is transparent, so outcomes must agree exactly.
	g := graph.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	agreed := false
	for seed := int64(1); seed <= 64; seed++ {
		res, err := sim.Run(g, 0, protocol.Flooding(), sim.Config{
			LossRate:     0.4,
			NACKRecovery: true,
			Seed:         seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Lost == 0 {
			continue // this seed never exercised the recovery path
		}
		if res.Delivered != 2 {
			t.Fatalf("sim seed %d: recovery failed to deliver (%d/2)", seed, res.Delivered)
		}
		if len(res.Forward) != liveForwards {
			t.Fatalf("sim forwards %d != live forwards %d: crash recovery was not transparent",
				len(res.Forward), liveForwards)
		}
		agreed = true
		break
	}
	if !agreed {
		t.Fatal("no seed in 1..64 exercised the sim recovery path")
	}
}

// TestRejoinViaBeacons restarts a journaled network with hello maintenance
// on: a restarted node must come up with a provably stale view (empty
// staleness clocks), hold that state until every view-neighbor beacons, and
// then count a completed rejoin.
func TestRejoinViaBeacons(t *testing.T) {
	dir := t.TempDir()
	cfg := NodeConfig{
		Protocol:      protocol.Flooding,
		TimeScale:     time.Millisecond,
		JournalDir:    dir,
		HelloInterval: 50,
	}
	h := newHarness(t, 2, cfg, nil)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))
	if b := h.rpc("n0", body{Type: "status"}); b.Stale {
		t.Error("first-boot node reports a stale view (topology push is beacon round 0)")
	}
	h.close()

	h2 := newHarness(t, 2, cfg, nil)
	h2.initAll()
	h2.topologyAll(pathAdjacency(h2.names))
	if b := h2.rpc("n0", body{Type: "status"}); !b.Stale {
		t.Error("restarted node trusts its view before any neighbor beaconed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b := h2.rpc("n0", body{Type: "status"})
		if !b.Stale && b.Rejoins == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n0 never rejoined: %+v", b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAntiEntropyRepair cuts n2 off (the router drops everything to and from
// it — a down node, as the survivors see one) through a full wave, then heals
// the cut: the next hello beacon advertising the forwarded message must drive
// n2 to NACK it back and deliver, without any retransmission of the wave
// itself.
func TestAntiEntropyRepair(t *testing.T) {
	var isolated int32
	filter := func(env envelope) []envelope {
		if atomic.LoadInt32(&isolated) == 1 && (env.Dest == "n2" || env.Src == "n2") {
			return nil
		}
		return []envelope{env}
	}
	h := newHarness(t, 3, NodeConfig{
		Protocol:      protocol.Flooding,
		TimeScale:     time.Millisecond,
		NACKRecovery:  true,
		HelloInterval: 20,
	}, filter)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))
	atomic.StoreInt32(&isolated, 1)
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(5)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	h.waitDelivered("n0", 5)
	h.waitDelivered("n1", 5)
	// Lift the cut only once n1's status shows the forward: status replies
	// travel the same ordered pipe as the forwarded pkt, so by then the copy
	// for n2 has already been dropped by the router.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b := h.rpc("n1", body{Type: "status"})
		forwarded := false
		for _, m := range b.Forwarded {
			if m == 5 {
				forwarded = true
			}
		}
		if forwarded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n1 never forwarded: %+v", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	atomic.StoreInt32(&isolated, 0)
	h.waitDelivered("n2", 5)
	if b := h.rpc("n2", body{Type: "status"}); b.NACKs == 0 {
		t.Errorf("n2 recovered the wave without anti-entropy NACKs: %+v", b)
	}
}

// TestLengthFramerMalformed hand-crafts damaged binary frames: an oversized
// length prefix must be discarded (payload skipped, stream resynced) and a
// truncated prefix or payload must surface as a clean counted drop — never a
// hang, a panic, or an unbounded allocation.
func TestLengthFramerMalformed(t *testing.T) {
	valid := func(s string) []byte {
		var b bytes.Buffer
		f := &lengthFramer{w: &b}
		if err := f.WriteFrame([]byte(s)); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	t.Run("oversized then resync", func(t *testing.T) {
		var b bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
		b.Write(hdr[:])
		b.Write(make([]byte, maxFrame+1)) // the payload to skip
		b.Write(valid(`{"a":1}`))
		f := &lengthFramer{r: &b}
		if _, err := f.ReadFrame(); err != errFrameOversize {
			t.Fatalf("oversized frame: got %v, want errFrameOversize", err)
		}
		got, err := f.ReadFrame()
		if err != nil || string(got) != `{"a":1}` {
			t.Fatalf("after resync: got %q, %v", got, err)
		}
	})

	t.Run("truncated prefix", func(t *testing.T) {
		f := &lengthFramer{r: bytes.NewReader([]byte{0, 0})}
		if _, err := f.ReadFrame(); err != errFrameTruncated {
			t.Fatalf("got %v, want errFrameTruncated", err)
		}
	})

	t.Run("truncated payload", func(t *testing.T) {
		frame := valid(`{"a":1}`)
		f := &lengthFramer{r: bytes.NewReader(frame[:len(frame)-2])}
		if _, err := f.ReadFrame(); err != errFrameTruncated {
			t.Fatalf("got %v, want errFrameTruncated", err)
		}
	})

	t.Run("oversized truncated payload", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
		f := &lengthFramer{r: bytes.NewReader(hdr[:])}
		if _, err := f.ReadFrame(); err != errFrameTruncated {
			t.Fatalf("got %v, want errFrameTruncated", err)
		}
	})
}

// TestStdioWireDrops feeds a length-framed stream holding an oversized frame,
// an undecodable frame, a valid envelope, and a truncated tail: recv must
// deliver the envelope, count three drops, and end in a clean EOF.
func TestStdioWireDrops(t *testing.T) {
	var b bytes.Buffer
	out := &lengthFramer{w: &b}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	b.Write(hdr[:])
	b.Write(make([]byte, maxFrame+1))
	if err := out.WriteFrame([]byte("not json")); err != nil {
		t.Fatal(err)
	}
	if err := out.WriteFrame([]byte(`{"src":"c0","dest":"n0","body":{"type":"read"}}`)); err != nil {
		t.Fatal(err)
	}
	b.Write([]byte{0, 0}) // truncated tail

	w := &stdioWire{fr: &lengthFramer{r: &b}}
	env, err := w.recv()
	if err != nil || env.Body.Type != "read" {
		t.Fatalf("recv: got %+v, %v", env, err)
	}
	if _, err := w.recv(); err != io.EOF {
		t.Fatalf("after truncated tail: got %v, want io.EOF", err)
	}
	if got := w.drops(); got != 3 {
		t.Errorf("drops = %d, want 3 (oversized, undecodable, truncated)", got)
	}
}

// TestUDPWireDropsAndPeers sends a malformed datagram before a valid one (the
// noise must be a counted drop, not a hang or crash) and exercises the
// runtime peer-address update path.
func TestUDPWireDropsAndPeers(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	w := newUDPWire(conn, nil)
	addr := conn.LocalAddr().(*net.UDPAddr)
	if _, err := client.WriteToUDP([]byte("{{{ not json"), addr); err != nil {
		t.Fatal(err)
	}
	if _, err := client.WriteToUDP([]byte(`{"src":"c0","dest":"n0","body":{"type":"read"}}`), addr); err != nil {
		t.Fatal(err)
	}
	env, err := w.recv()
	if err != nil || env.Body.Type != "read" {
		t.Fatalf("recv: got %+v, %v", env, err)
	}
	if got := w.drops(); got != 1 {
		t.Errorf("drops = %d, want 1", got)
	}
	// The valid datagram taught the wire the client's address; a peers update
	// must be able to override it and to install new names.
	if err := w.updatePeers(map[string]string{"n9": client.LocalAddr().String()}); err != nil {
		t.Fatal(err)
	}
	if err := w.send(envelope{Src: "n0", Dest: "n9", Body: body{Type: "read_ok"}}); err != nil {
		t.Fatalf("send to updated peer: %v", err)
	}
	buf := make([]byte, 1024)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := client.ReadFromUDP(buf); err != nil {
		t.Fatalf("updated peer never got the envelope: %v", err)
	}
	if err := w.updatePeers(map[string]string{"bad": "not-an-address:::"}); err == nil {
		t.Error("unresolvable peer address accepted")
	}
}
