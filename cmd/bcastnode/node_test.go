package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adhocbcast/internal/protocol"
	"adhocbcast/internal/sim"
)

// harness wires N in-process nodes together over stdio pipes, playing the
// maelstrom router's role: every envelope a node emits is decoded, passed
// through an optional filter (the nemesis hook), and delivered to its
// destination node's stdin, or to the test client for "c*" destinations.
type harness struct {
	t      *testing.T
	names  []string
	index  map[string]int
	nodes  []*Node
	inW    []*io.PipeWriter
	inMu   []sync.Mutex
	enc    []*json.Encoder
	client chan envelope
	filter func(env envelope) []envelope
	msgID  int
	wg     sync.WaitGroup
}

// newHarness starts n nodes named n0..n{n-1}. filter may be nil (identity);
// it runs on router goroutines and must be safe for concurrent use.
func newHarness(t *testing.T, n int, cfg NodeConfig, filter func(env envelope) []envelope) *harness {
	t.Helper()
	h := &harness{
		t:      t,
		index:  make(map[string]int, n),
		client: make(chan envelope, 256),
		filter: filter,
		inMu:   make([]sync.Mutex, n),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		h.names = append(h.names, name)
		h.index[name] = i
	}
	for i := 0; i < n; i++ {
		inR, inW := io.Pipe()
		outR, outW := io.Pipe()
		node, err := NewNode(cfg, &stdioWire{fr: newLineFramer(inR, outW)})
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, node)
		h.inW = append(h.inW, inW)
		h.enc = append(h.enc, json.NewEncoder(inW))
		h.wg.Add(2)
		go func() {
			defer h.wg.Done()
			defer outW.Close()
			if err := node.Run(); err != nil {
				t.Errorf("node run: %v", err)
			}
		}()
		go func() {
			defer h.wg.Done()
			h.route(outR)
		}()
	}
	t.Cleanup(h.close)
	return h
}

// close shuts every node down (abruptly, from the nodes' point of view: pipes
// just end) and waits for the routers to drain. Safe to call twice; restart
// tests call it mid-test before bringing up a successor harness on the same
// journal directory.
func (h *harness) close() {
	for _, w := range h.inW {
		w.Close()
	}
	h.wg.Wait()
}

func (h *harness) route(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			h.t.Errorf("router: bad frame %q: %v", sc.Text(), err)
			continue
		}
		out := []envelope{env}
		if h.filter != nil {
			out = h.filter(env)
		}
		for _, e := range out {
			h.deliver(e)
		}
	}
}

func (h *harness) deliver(env envelope) {
	if strings.HasPrefix(env.Dest, "c") {
		h.client <- env
		return
	}
	i, ok := h.index[env.Dest]
	if !ok {
		h.t.Errorf("router: envelope for unknown node %q", env.Dest)
		return
	}
	h.inMu[i].Lock()
	defer h.inMu[i].Unlock()
	// Encode writes the document and its trailing newline in one Write, so
	// concurrent routers interleave whole frames only.
	if err := h.enc[i].Encode(env); err != nil && err != io.ErrClosedPipe {
		h.t.Errorf("router: deliver to %s: %v", env.Dest, err)
	}
}

// rpc sends body b to a node as the client and waits for the matching reply.
func (h *harness) rpc(dest string, b body) body {
	h.t.Helper()
	h.msgID++
	b.MsgID = h.msgID
	h.deliverClient(envelope{Src: "c0", Dest: dest, Body: b})
	deadline := time.After(10 * time.Second)
	for {
		select {
		case env := <-h.client:
			if env.Body.InReplyTo == b.MsgID {
				return env.Body
			}
		case <-deadline:
			h.t.Fatalf("rpc %s to %s: no reply", b.Type, dest)
		}
	}
}

func (h *harness) deliverClient(env envelope) {
	i := h.index[env.Dest]
	h.inMu[i].Lock()
	defer h.inMu[i].Unlock()
	if err := h.enc[i].Encode(env); err != nil {
		h.t.Fatalf("client send to %s: %v", env.Dest, err)
	}
}

// initAll runs the init handshake on every node.
func (h *harness) initAll() {
	h.t.Helper()
	for _, name := range h.names {
		if b := h.rpc(name, body{Type: "init", NodeID: name, NodeIDs: h.names}); b.Type != "init_ok" {
			h.t.Fatalf("init %s: got %+v", name, b)
		}
	}
}

// topologyAll pushes the same full adjacency to every node.
func (h *harness) topologyAll(adj map[string][]string) {
	h.t.Helper()
	for _, name := range h.names {
		if b := h.rpc(name, body{Type: "topology", Topology: adj}); b.Type != "topology_ok" {
			h.t.Fatalf("topology %s: got %+v", name, b)
		}
	}
}

// waitDelivered polls read on dest until messages contains msg.
func (h *harness) waitDelivered(dest string, msg int64) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		b := h.rpc(dest, body{Type: "read"})
		for _, m := range b.Messages {
			if m == msg {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("node %s never delivered message %d", dest, msg)
}

func pathAdjacency(names []string) map[string][]string {
	adj := make(map[string][]string, len(names))
	for i, name := range names {
		if i+1 < len(names) {
			adj[name] = append(adj[name], names[i+1])
		}
		if i > 0 {
			adj[name] = append(adj[name], names[i-1])
		}
	}
	return adj
}

func msgRef(m int64) *int64 { return &m }

// TestNodeBroadcastFlooding floods two waves from different sources across a
// 5-node path and checks every node reads both messages and forwarded.
func TestNodeBroadcastFlooding(t *testing.T) {
	h := newHarness(t, 5, NodeConfig{
		Protocol:  protocol.Flooding,
		TimeScale: time.Millisecond,
	}, nil)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))

	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(7)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	if b := h.rpc("n4", body{Type: "broadcast", Message: msgRef(9)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	for _, name := range h.names {
		h.waitDelivered(name, 7)
		h.waitDelivered(name, 9)
	}
	for _, name := range h.names {
		b := h.rpc(name, body{Type: "status"})
		if len(b.Forwarded) != 2 {
			t.Errorf("%s forwarded %v, want both messages (flooding)", name, b.Forwarded)
		}
	}
}

// TestNodeGenericFR runs the pruning protocol over a denser topology: two
// triangles joined by a bridge. Everyone must deliver.
func TestNodeGenericFR(t *testing.T) {
	h := newHarness(t, 6, NodeConfig{
		Protocol:  func() sim.Protocol { return protocol.Generic(protocol.TimingFirstReceipt) },
		Hops:      2,
		TimeScale: time.Millisecond,
	}, nil)
	h.initAll()
	h.topologyAll(map[string][]string{
		"n0": {"n1", "n2"},
		"n1": {"n0", "n2"},
		"n2": {"n0", "n1", "n3"},
		"n3": {"n2", "n4", "n5"},
		"n4": {"n3", "n5"},
		"n5": {"n3", "n4"},
	})
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(1)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	for _, name := range h.names {
		h.waitDelivered(name, 1)
	}
}

// TestNodeRecovery drops the first pkt from n1 to n2 on a 3-node path,
// injecting a garble in its place (the router playing the lossy radio), and
// checks the NACK retry chain completes delivery.
func TestNodeRecovery(t *testing.T) {
	var dropped int32
	filter := func(env envelope) []envelope {
		if env.Src == "n1" && env.Dest == "n2" && env.Body.Type == "pkt" &&
			atomic.CompareAndSwapInt32(&dropped, 0, 1) {
			g := env
			g.Body = body{Type: "garble", From: env.Body.From, Attempt: env.Body.Attempt, Message: env.Body.Message}
			return []envelope{g}
		}
		return []envelope{env}
	}
	h := newHarness(t, 3, NodeConfig{
		Protocol:     protocol.Flooding,
		TimeScale:    time.Millisecond,
		NACKRecovery: true,
		RetryBudget:  4,
	}, filter)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(3)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	h.waitDelivered("n2", 3)
	if atomic.LoadInt32(&dropped) == 0 {
		t.Fatal("the filter never dropped a pkt; the recovery path was not exercised")
	}
	if b := h.rpc("n2", body{Type: "status"}); b.NACKs == 0 {
		t.Errorf("n2 recovered without NACKing: %+v", b)
	}
}

// TestNodeTrafficGenerator gives both nodes of a 2-node network a traffic
// rate: each must self-inject broadcast waves from its own stream of the
// shared plan (ids tagged at or above 2^32 per source) and the waves must
// cross the link like any harness-injected broadcast.
func TestNodeTrafficGenerator(t *testing.T) {
	h := newHarness(t, 2, NodeConfig{
		Protocol:       protocol.Flooding,
		TimeScale:      time.Millisecond,
		Seed:           5,
		Rate:           3,
		TrafficHorizon: 10,
	}, nil)
	h.initAll()
	h.topologyAll(pathAdjacency(h.names))

	// Rate 3 over 10 units: each node injects ~30 waves (zero arrivals has
	// probability e^-30). Wait until n1 has delivered a wave originated by
	// n0 and vice versa.
	sawFrom := func(dest string, source int) bool {
		b := h.rpc(dest, body{Type: "read"})
		for _, m := range b.Messages {
			if m>>32 == int64(source+1) {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sawFrom("n1", 0) || !sawFrom("n0", 1) {
		if time.Now().After(deadline) {
			t.Fatal("traffic waves never crossed the link")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTrafficMessageIDs pins the id tagging: self-injected ids stay disjoint
// from small harness ids and from other sources' streams.
func TestTrafficMessageIDs(t *testing.T) {
	if got := trafficMessageID(0, 0); got != 1<<32 {
		t.Errorf("trafficMessageID(0,0) = %d, want 2^32", got)
	}
	if trafficMessageID(1, 0) == trafficMessageID(0, 1<<31) {
		t.Error("source streams overlap")
	}
}

// TestNodeErrors checks the maelstrom-style error replies.
func TestNodeErrors(t *testing.T) {
	h := newHarness(t, 2, NodeConfig{
		Protocol:  protocol.Flooding,
		TimeScale: time.Millisecond,
	}, nil)
	h.initAll()
	if b := h.rpc("n0", body{Type: "no-such-type"}); b.Type != "error" || b.Code != errNotSupported {
		t.Errorf("unknown type: got %+v", b)
	}
	if b := h.rpc("n0", body{Type: "broadcast", Message: msgRef(1)}); b.Type != "error" {
		t.Errorf("broadcast before topology: got %+v", b)
	}
	h.topologyAll(pathAdjacency(h.names))
	if b := h.rpc("n0", body{Type: "broadcast"}); b.Type != "error" {
		t.Errorf("broadcast without message: got %+v", b)
	}
	if b := h.rpc("n0", body{Type: "topology", Topology: map[string][]string{"bogus": {"n0"}}}); b.Type != "error" {
		t.Errorf("bogus topology: got %+v", b)
	}
}

// TestLengthFramer round-trips frames through the binary framing.
func TestLengthFramer(t *testing.T) {
	var buf bytes.Buffer
	f := &lengthFramer{r: &buf, w: &buf}
	frames := []string{`{"a":1}`, "", `{"b":` + strings.Repeat("2", 1000) + `}`}
	for _, s := range frames {
		if err := f.WriteFrame([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := f.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != want {
			t.Fatalf("frame %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := f.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: got %v, want EOF", err)
	}
	if err := f.WriteFrame(make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestNodeUDP runs two nodes over real localhost UDP sockets, driven by a
// UDP client, and checks the wave crosses the link.
func TestNodeUDP(t *testing.T) {
	names := []string{"n0", "n1"}
	conns := make([]*net.UDPConn, 2)
	addrs := make([]*net.UDPAddr, 2)
	for i := range conns {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
		addrs[i] = c.LocalAddr().(*net.UDPAddr)
	}
	var wg sync.WaitGroup
	for i := range conns {
		peers := make(map[string]*net.UDPAddr)
		for j, name := range names {
			if j != i {
				peers[name] = addrs[j]
			}
		}
		node, err := NewNode(NodeConfig{
			Protocol:  protocol.Flooding,
			TimeScale: time.Millisecond,
		}, newUDPWire(conns[i], peers))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Run(); err != nil {
				t.Errorf("node run: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	})

	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	msgID := 0
	rpc := func(dest int, b body) body {
		t.Helper()
		msgID++
		b.MsgID = msgID
		raw, err := json.Marshal(envelope{Src: "c0", Dest: names[dest], Body: b})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WriteToUDP(raw, addrs[dest]); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64<<10)
		client.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			sz, _, err := client.ReadFromUDP(buf)
			if err != nil {
				t.Fatalf("rpc %s to %s: %v", b.Type, names[dest], err)
			}
			var env envelope
			if err := json.Unmarshal(buf[:sz], &env); err != nil {
				t.Fatal(err)
			}
			if env.Body.InReplyTo == b.MsgID {
				return env.Body
			}
		}
	}
	for i := range names {
		if b := rpc(i, body{Type: "init", NodeID: names[i], NodeIDs: names}); b.Type != "init_ok" {
			t.Fatalf("init: got %+v", b)
		}
		adj := map[string][]string{"n0": {"n1"}, "n1": {"n0"}}
		if b := rpc(i, body{Type: "topology", Topology: adj}); b.Type != "topology_ok" {
			t.Fatalf("topology: got %+v", b)
		}
	}
	if b := rpc(0, body{Type: "broadcast", Message: msgRef(5)}); b.Type != "broadcast_ok" {
		t.Fatalf("broadcast: got %+v", b)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		b := rpc(1, body{Type: "read"})
		if len(b.Messages) == 1 && b.Messages[0] == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n1 never delivered: %+v", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
