package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adhocbcast/internal/graph"
	"adhocbcast/internal/hello"
	rt "adhocbcast/internal/runtime"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/traffic"
	"adhocbcast/internal/view"
)

// envelope is the maelstrom-style message wrapper: every frame on the wire is
// one envelope, routed by node name.
type envelope struct {
	Src  string `json:"src"`
	Dest string `json:"dest"`
	Body body   `json:"body"`
}

// body is the union of all message bodies the node speaks. Type selects the
// handler; the remaining fields are per-type (unused ones stay zero and are
// omitted on the wire).
type body struct {
	Type      string `json:"type"`
	MsgID     int    `json:"msg_id,omitempty"`
	InReplyTo int    `json:"in_reply_to,omitempty"`

	// init
	NodeID  string   `json:"node_id,omitempty"`
	NodeIDs []string `json:"node_ids,omitempty"`
	// topology: the full adjacency by node name. The paper's protocols
	// decide from k-hop local views; in a deployment nodes gather those via
	// hello exchange, here the harness supplies the topology and each node
	// cuts its own local view out of it.
	Topology map[string][]string `json:"topology,omitempty"`

	// broadcast / read / status: Message identifies one broadcast wave.
	Message  *int64  `json:"message,omitempty"`
	Messages []int64 `json:"messages,omitempty"`

	// protocol traffic (pkt, nack, garble)
	From    int         `json:"from,omitempty"`
	Attempt int         `json:"attempt,omitempty"`
	Packet  *sim.Packet `json:"packet,omitempty"`

	// hello: one view-maintenance beacon. Round is the beacon round (1-based;
	// the topology push is round 0), Forwarded the sender's forwarded message
	// ids (the anti-entropy summary receivers repair from).
	Round int `json:"round,omitempty"`

	// peers: a runtime peer-address update (UDP mode), name -> host:port.
	// A restarted node rebinds to a fresh port, so the supervisor pushes
	// updated maps to the survivors.
	Peers map[string]string `json:"peers,omitempty"`

	// status_ok
	Forwarded []int64 `json:"forwarded,omitempty"`
	NACKs     int     `json:"nacks,omitempty"`
	// status_ok crash-recovery state: journal boots observed (restarts =
	// boots-1), journal replays performed, completed rejoins after a
	// restart, counted malformed/oversized frame drops, and whether the
	// node's view is stale right now (forwarding held).
	Boots      int   `json:"boots,omitempty"`
	Replays    int   `json:"replays,omitempty"`
	Rejoins    int   `json:"rejoins,omitempty"`
	FrameDrops int64 `json:"frame_drops,omitempty"`
	Stale      bool  `json:"stale,omitempty"`

	// error
	Code int    `json:"code,omitempty"`
	Text string `json:"text,omitempty"`
}

// maelstrom-compatible error codes.
const (
	errNotSupported = 10
	errMalformed    = 12
)

// NodeConfig parameterizes one live node. The protocol and timing fields
// mirror runtime.Config so a bcastnode deployment and a live cluster run the
// same engine configuration.
type NodeConfig struct {
	Protocol       func() sim.Protocol
	Hops           int
	Metric         view.Metric
	PiggybackDepth int
	BackoffWindow  float64
	TransmitDelay  float64
	// TimeScale is the wall-clock duration of one protocol time unit
	// (default 10ms: real-network scale rather than the cluster's 2ms).
	TimeScale    time.Duration
	NACKRecovery bool
	RetryBudget  int
	NACKDelay    float64
	RetryBackoff float64
	Seed         int64
	// Rate, when positive, turns the node into a traffic source: once the
	// first topology is configured it replays its own per-source stream of
	// the shared deterministic traffic plan (internal/traffic, every node a
	// source at Rate messages per time unit over TrafficHorizon units),
	// starting each arrival as a fresh broadcast wave. All nodes run the
	// same (Seed, N)-keyed plan, so a deployment's offered load is
	// reproducible without any coordination traffic.
	Rate float64
	// TrafficHorizon is the generation horizon in time units for Rate
	// (default 400).
	TrafficHorizon float64
	// JournalDir, when non-empty, enables the write-ahead journal: the node
	// appends its durable broadcast state (seen messages, forwards, pending
	// NACK obligations) to <JournalDir>/<node-name>.journal and replays it
	// after a restart, so a crashed-and-respawned node neither re-forwards
	// nor double-counts. See docs/recovery.md.
	JournalDir string
	// HelloInterval, when positive, enables periodic hello beacons every
	// HelloInterval time units after the first topology: per-neighbor
	// staleness clocks, conservative forwarding holds while the view is
	// stale, and anti-entropy repair of broadcasts missed while dead (see
	// docs/recovery.md). 0 disables view maintenance.
	HelloInterval float64
	// HelloExpiry is the staleness threshold: a view-neighbor not heard from
	// for longer than this makes the view stale (default 3×HelloInterval).
	HelloExpiry float64
	// HelloLossRate drops incoming beacons with the seed-deterministic
	// schedule of hello.Dynamic.Received, so a pipe harness can exercise
	// beacon loss without real process churn.
	HelloLossRate float64
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Metric == 0 {
		c.Metric = view.MetricID
	}
	if c.PiggybackDepth == 0 {
		c.PiggybackDepth = 2
	}
	if c.PiggybackDepth < 0 {
		c.PiggybackDepth = 0
	}
	if c.BackoffWindow <= 0 {
		c.BackoffWindow = 8
	}
	if c.TransmitDelay <= 0 {
		c.TransmitDelay = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 10 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.NACKDelay == 0 {
		c.NACKDelay = 0.5
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 1
	}
	if c.TrafficHorizon <= 0 {
		c.TrafficHorizon = 400
	}
	if c.HelloInterval > 0 && c.HelloExpiry <= 0 {
		c.HelloExpiry = 3 * c.HelloInterval
	}
	return c
}

// Node is one standalone protocol node: a handler loop around a runtime.Core
// per broadcast message, speaking envelopes over a wire. All protocol state
// is confined to the loop goroutine; the wire reader and timers post
// closures into it.
type Node struct {
	cfg  NodeConfig
	wire wire
	errl *log.Logger

	loop chan func()
	done chan struct{}
	wg   sync.WaitGroup

	name  string
	self  int
	names []string
	index map[string]int
	g     *graph.Graph
	base  []view.Priority
	start time.Time
	msgID int
	cores map[int64]*liveCore

	trafficStarted bool

	// crash-recovery state (all confined to the loop goroutine)
	journal    *journal
	pendingOps []journalOp // prior-life ops awaiting replay at first topology
	boots      int
	replays    int
	rejoins    int
	// view maintenance
	dyn            hello.Dynamic
	beaconsStarted bool
	helloRound     int
	lastHeard      map[int]float64 // view-neighbor -> last beacon time (units)
	rejoinPending  bool
	// asked[msg][from] counts anti-entropy NACKs already sent for msg to from
	asked map[int64]map[int]int
}

// NewNode builds a node over the given wire.
func NewNode(cfg NodeConfig, w wire) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("bcastnode: NodeConfig.Protocol is nil")
	}
	return &Node{
		cfg:  cfg,
		wire: w,
		errl: log.New(log.Writer(), "bcastnode: ", 0),
		loop: make(chan func(), 64),
		done: make(chan struct{}),
		dyn: hello.Dynamic{
			Interval: cfg.HelloInterval,
			Expiry:   cfg.HelloExpiry,
			LossRate: cfg.HelloLossRate,
			Seed:     cfg.Seed,
		},
		cores:     make(map[int64]*liveCore),
		lastHeard: make(map[int]float64),
		asked:     make(map[int64]map[int]int),
	}, nil
}

// Run reads envelopes until the wire closes, dispatching every message —
// and every timer the protocol sets — onto the single handler loop. It
// returns nil on a clean wire shutdown (EOF or closed socket).
func (n *Node) Run() error {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case fn := <-n.loop:
				fn()
			case <-n.done:
				// Drain what the reader enqueued before EOF so one-shot
				// piped input (messages then immediate close) still gets
				// every reply; timers that fire after this are dropped.
				for {
					select {
					case fn := <-n.loop:
						fn()
					default:
						return
					}
				}
			}
		}
	}()
	var rerr error
	for {
		env, err := n.wire.recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				rerr = err
			}
			break
		}
		n.post(func() { n.handle(env) })
	}
	close(n.done)
	n.wg.Wait()
	return rerr
}

// post hands fn to the loop goroutine; it is dropped if the node is shutting
// down.
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.done:
	}
}

// after schedules fn on the loop after d protocol time units. Every timer
// execution ends at a journal durability point, like envelope handlers.
func (n *Node) after(d float64, fn func()) {
	time.AfterFunc(time.Duration(d*float64(n.cfg.TimeScale)), func() {
		n.post(func() {
			fn()
			n.syncJournal()
		})
	})
}

// now returns the node's clock in protocol time units.
func (n *Node) now() float64 {
	return float64(time.Since(n.start)) / float64(n.cfg.TimeScale)
}

func (n *Node) handle(env envelope) {
	switch env.Body.Type {
	case "init":
		n.handleInit(env)
	case "topology":
		n.handleTopology(env)
	case "broadcast":
		n.handleBroadcast(env)
	case "read":
		n.handleRead(env)
	case "status":
		n.handleStatus(env)
	case "pkt":
		n.handlePkt(env)
	case "nack":
		n.handleNACK(env)
	case "garble":
		n.handleGarble(env)
	case "hello":
		n.handleHello(env)
	case "peers":
		n.handlePeers(env)
	default:
		n.replyError(env, errNotSupported, fmt.Sprintf("unsupported message type %q", env.Body.Type))
	}
	// One durability point per handled envelope: everything the handler
	// journaled is on disk before the next envelope is processed ("forward"
	// records additionally sync before their datagrams; see liveCore).
	n.syncJournal()
}

// syncJournal flushes pending journal records; an I/O error here means
// durability is gone, so it is fatal for the journal (logged, journal
// disabled) rather than silently ignored.
func (n *Node) syncJournal() {
	if n.journal == nil {
		return
	}
	if err := n.journal.sync(); err != nil {
		n.errl.Printf("journal sync: %v (journaling disabled)", err)
		n.journal = nil
	}
}

// record appends one journal op (and nothing when journaling is off).
func (n *Node) record(op journalOp) {
	if n.journal == nil {
		return
	}
	if err := n.journal.append(op); err != nil {
		n.errl.Printf("journal append: %v (journaling disabled)", err)
		n.journal = nil
	}
}

func (n *Node) send(dest string, b body) {
	n.msgID++
	b.MsgID = n.msgID
	if err := n.wire.send(envelope{Src: n.name, Dest: dest, Body: b}); err != nil {
		n.errl.Printf("send to %s: %v", dest, err)
	}
}

func (n *Node) reply(env envelope, b body) {
	b.InReplyTo = env.Body.MsgID
	n.send(env.Src, b)
}

func (n *Node) replyError(env envelope, code int, text string) {
	n.reply(env, body{Type: "error", Code: code, Text: text})
}

func (n *Node) handleInit(env envelope) {
	b := env.Body
	n.names = b.NodeIDs
	n.index = make(map[string]int, len(b.NodeIDs))
	for i, name := range b.NodeIDs {
		n.index[name] = i
	}
	self, ok := n.index[b.NodeID]
	if !ok {
		n.replyError(env, errMalformed, fmt.Sprintf("node_id %q not in node_ids", b.NodeID))
		return
	}
	n.name = b.NodeID
	n.self = self
	n.start = time.Now()
	if n.cfg.JournalDir != "" && n.journal == nil {
		j, ops, boots, err := openJournal(filepath.Join(n.cfg.JournalDir, n.name+".journal"))
		if err != nil {
			n.replyError(env, errMalformed, fmt.Sprintf("journal: %v", err))
			return
		}
		n.journal = j
		n.pendingOps = ops
		n.boots = boots
	}
	n.reply(env, body{Type: "init_ok"})
}

func (n *Node) handleTopology(env envelope) {
	if n.name == "" {
		n.replyError(env, errMalformed, "topology before init")
		return
	}
	g := graph.New(len(n.names))
	for name, nbrs := range env.Body.Topology {
		u, ok := n.index[name]
		if !ok {
			n.replyError(env, errMalformed, fmt.Sprintf("unknown node %q in topology", name))
			return
		}
		for _, nb := range nbrs {
			v, ok := n.index[nb]
			if !ok {
				n.replyError(env, errMalformed, fmt.Sprintf("unknown neighbor %q of %q", nb, name))
				return
			}
			if err := g.AddEdge(u, v); err != nil {
				n.replyError(env, errMalformed, err.Error())
				return
			}
		}
	}
	n.g = g
	n.base = view.BasePriorities(g, n.cfg.Metric)
	// Topology changes reset all broadcast state: views were cut from the
	// old graph.
	n.cores = make(map[int64]*liveCore)
	if len(n.pendingOps) > 0 {
		// First topology after a restart: replay the journal into fresh
		// cores. A first-boot node has no prior ops and skips this.
		n.replayJournal(n.pendingOps)
		n.pendingOps = nil
		n.replays++
	}
	if n.cfg.HelloInterval > 0 {
		if n.boots > 1 {
			// Rejoin protocol: a restarted node trusts nothing about its
			// neighborhood until every view-neighbor beacons — its staleness
			// clocks start empty, so the conservative fallback holds its
			// forwarding until the view is confirmed fresh.
			n.lastHeard = make(map[int]float64)
			n.rejoinPending = true
		} else {
			// The topology push is beacon round 0: every view-neighbor
			// counts as just heard (the sim models round 0 as always
			// received).
			now := n.now()
			n.g.ForEachNeighbor(n.self, func(u int) { n.lastHeard[u] = now })
		}
	}
	n.reply(env, body{Type: "topology_ok"})
	n.startTraffic()
	n.startBeacons()
}

// replayJournal rebuilds broadcast state from a prior life's journal: sent
// packets are restored first (so nothing replays into a duplicate forward),
// then source starts, deliveries, and unmet NACK obligations re-run through
// the ordinary engine entry points — a node that crashed before a forwarding
// decision re-decides it, one that crashed after honors it.
func (n *Node) replayJournal(ops []journalOp) {
	for _, op := range ops {
		if op.Op == "forward" && op.Packet != nil {
			n.core(op.Msg).core.RestoreSent(*op.Packet)
		}
	}
	type obligation struct {
		msg           int64
		from, attempt int
	}
	pending := make(map[obligation]int)
	for _, op := range ops {
		switch op.Op {
		case "source":
			lc := n.core(op.Msg)
			if !lc.core.Delivered() {
				lc.core.Start()
			}
		case "deliver":
			if op.Packet != nil {
				n.core(op.Msg).core.HandlePacket(op.From, *op.Packet, n.now())
			}
		case "nack":
			pending[obligation{op.Msg, op.From, op.Attempt}]++
		case "nack_done":
			pending[obligation{op.Msg, op.From, op.Attempt}]--
		}
	}
	for ob, count := range pending {
		for i := 0; i < count; i++ {
			n.core(ob.msg).core.HandleNACK(ob.from, ob.attempt)
		}
	}
}

// staleView reports whether this node's view is provably stale: hello
// maintenance is on and some view-neighbor has not beaconed within the
// expiry (a restarted node starts with empty clocks, so it is stale until
// every view-neighbor confirms). Installed as the core's conservative-hold
// hook.
func (n *Node) staleView(v int, now float64) bool {
	if n.cfg.HelloInterval <= 0 || n.g == nil {
		return false
	}
	stale := false
	n.g.ForEachNeighbor(n.self, func(u int) {
		if stale {
			return
		}
		at, heard := n.lastHeard[u]
		if !heard || now-at > n.cfg.HelloExpiry {
			stale = true
		}
	})
	return stale
}

// startBeacons arms the periodic hello beacon on the first topology.
func (n *Node) startBeacons() {
	if n.cfg.HelloInterval <= 0 || n.beaconsStarted {
		return
	}
	n.beaconsStarted = true
	n.scheduleBeacon()
}

func (n *Node) scheduleBeacon() {
	n.after(n.cfg.HelloInterval, func() {
		n.helloRound++
		n.sendBeacon(n.helloRound)
		n.scheduleBeacon()
	})
}

// sendBeacon broadcasts one hello to every true neighbor, carrying this
// node's forwarded message ids as the anti-entropy summary.
func (n *Node) sendBeacon(round int) {
	if n.g == nil {
		return
	}
	var fwd []int64
	for m, lc := range n.cores {
		if lc.core.Forwarded() {
			fwd = append(fwd, m)
		}
	}
	sort.Slice(fwd, func(i, j int) bool { return fwd[i] < fwd[j] })
	n.g.ForEachNeighbor(n.self, func(u int) {
		n.send(n.names[u], body{Type: "hello", From: n.self, Round: round, Forwarded: fwd})
	})
}

// handleHello processes one beacon: seeded loss, staleness-clock refresh,
// rejoin completion, and anti-entropy repair — any advertised forward this
// node has not delivered is NACKed back to the sender, which retransmits
// from its (journal-restored) sent packet. That is how a node that was dead
// during a wave recovers it.
func (n *Node) handleHello(env envelope) {
	if n.g == nil || n.cfg.HelloInterval <= 0 {
		return
	}
	from := env.Body.From
	if from < 0 || from >= len(n.names) {
		return
	}
	if !n.dyn.Received(n.self, from, env.Body.Round) {
		return // seeded beacon loss (no-op unless HelloLossRate is set)
	}
	n.lastHeard[from] = n.now()
	if n.rejoinPending && !n.staleView(n.self, n.now()) {
		n.rejoinPending = false
		n.rejoins++
	}
	if !n.cfg.NACKRecovery {
		return
	}
	for _, m := range env.Body.Forwarded {
		lc := n.core(m)
		if lc.core.Delivered() {
			continue
		}
		byFrom := n.asked[m]
		if byFrom == nil {
			byFrom = make(map[int]int)
			n.asked[m] = byFrom
		}
		if byFrom[from] >= n.cfg.RetryBudget {
			continue
		}
		byFrom[from]++
		lc.nacks++ // status counts anti-entropy requests with recovery NACKs
		lc.NACK(from, byFrom[from])
	}
}

// handlePeers applies a runtime peer-address update (UDP mode; a no-op on
// stdio wires, whose routing is the harness's job).
func (n *Node) handlePeers(env envelope) {
	if pw, ok := n.wire.(peerUpdater); ok {
		if err := pw.updatePeers(env.Body.Peers); err != nil {
			n.replyError(env, errMalformed, err.Error())
			return
		}
	}
	n.reply(env, body{Type: "peers_ok"})
}

// trafficMessageID tags node-generated broadcast waves: arrival seq of node
// self maps to a message id at or above 1<<32, so self-injected waves never
// collide with harness-injected messages (which stay below 2^32 in practice).
func trafficMessageID(self, seq int) int64 {
	return int64(self+1)<<32 | int64(seq)
}

// startTraffic arms the node's traffic generator on the first configured
// topology: it expands the shared deterministic plan, keeps only its own
// arrivals, and schedules each as a self-originated broadcast wave. Later
// topology changes do not re-arm it — pending timers keep firing and start
// their waves on whatever topology is current.
func (n *Node) startTraffic() {
	if n.cfg.Rate <= 0 || n.trafficStarted {
		return
	}
	n.trafficStarted = true
	plan, err := traffic.Poisson(traffic.Config{
		N:       len(n.names),
		Sources: len(n.names),
		Rate:    n.cfg.Rate,
		Horizon: n.cfg.TrafficHorizon,
		Seed:    n.cfg.Seed,
	})
	if err != nil {
		n.errl.Printf("traffic generator: %v", err)
		return
	}
	seq := 0
	for _, m := range plan.Messages {
		if m.Source != n.self {
			continue
		}
		msg := trafficMessageID(n.self, seq)
		seq++
		n.after(m.At, func() {
			if n.g == nil {
				return
			}
			lc := n.core(msg)
			if !lc.core.Delivered() {
				n.record(journalOp{Op: "source", Msg: msg})
				lc.core.Start()
			}
			n.syncJournal()
		})
	}
}

// core returns (building on first use) the runtime core of one broadcast
// message.
func (n *Node) core(msg int64) *liveCore {
	if lc, ok := n.cores[msg]; ok {
		return lc
	}
	lc := &liveCore{n: n, msg: msg}
	lv := view.NewLocal(n.g, n.self, n.cfg.Hops, n.base)
	lc.core = rt.NewCore(n.self, n.cfg.Protocol(), lv, n.g, rt.CoreConfig{
		N:                    len(n.names),
		PiggybackDepth:       n.cfg.PiggybackDepth,
		BackoffWindow:        n.cfg.BackoffWindow,
		TransmitDelay:        n.cfg.TransmitDelay,
		NACKRecovery:         n.cfg.NACKRecovery,
		RetryBudget:          n.cfg.RetryBudget,
		NACKDelay:            n.cfg.NACKDelay,
		RetryBackoff:         n.cfg.RetryBackoff,
		ConservativeFallback: n.cfg.HelloInterval > 0,
		StaleView:            n.staleView,
	}, lc, rt.StreamSeed(n.cfg.Seed, "bcastnode.backoff", n.self, int(msg)))
	lc.core.Init()
	n.cores[msg] = lc
	return lc
}

// ready guards handlers that need a configured topology.
func (n *Node) ready(env envelope, needMessage bool) bool {
	if n.g == nil {
		n.replyError(env, errMalformed, "no topology configured")
		return false
	}
	if needMessage && env.Body.Message == nil {
		n.replyError(env, errMalformed, fmt.Sprintf("%s without message", env.Body.Type))
		return false
	}
	return true
}

func (n *Node) handleBroadcast(env envelope) {
	if !n.ready(env, true) {
		return
	}
	lc := n.core(*env.Body.Message)
	if !lc.core.Delivered() {
		n.record(journalOp{Op: "source", Msg: lc.msg})
		lc.core.Start()
	}
	n.reply(env, body{Type: "broadcast_ok"})
}

func (n *Node) handlePkt(env envelope) {
	if !n.ready(env, true) {
		return
	}
	if env.Body.Packet == nil {
		n.replyError(env, errMalformed, "pkt without packet")
		return
	}
	lc := n.core(*env.Body.Message)
	// Journal every receipt before processing it — duplicates included,
	// because pruning protocols decide from the full receipt log. If the
	// process dies mid-decision, replay re-runs the receipts and re-decides.
	n.record(journalOp{Op: "deliver", Msg: lc.msg, From: env.Body.From, Packet: env.Body.Packet})
	lc.core.HandlePacket(env.Body.From, *env.Body.Packet, n.now())
}

func (n *Node) handleNACK(env envelope) {
	if !n.ready(env, true) {
		return
	}
	// The obligation is journaled before it is honored: a node killed
	// between NACK receipt and retransmit replays it after restart.
	n.record(journalOp{Op: "nack", Msg: *env.Body.Message, From: env.Body.From, Attempt: env.Body.Attempt})
	n.core(*env.Body.Message).core.HandleNACK(env.Body.From, env.Body.Attempt)
}

// handleGarble reports a detectable drop to the recovery layer: the node
// overheard attempt `attempt` from `from` but could not decode it. A real
// radio would raise this itself; over this transport the harness (or a
// relaying proxy) injects it when it drops a pkt.
func (n *Node) handleGarble(env envelope) {
	if !n.ready(env, true) {
		return
	}
	n.core(*env.Body.Message).core.HandleGarble(env.Body.From, env.Body.Attempt)
}

func (n *Node) handleRead(env envelope) {
	msgs := make([]int64, 0, len(n.cores))
	for m, lc := range n.cores {
		if lc.core.Delivered() {
			msgs = append(msgs, m)
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	n.reply(env, body{Type: "read_ok", Messages: msgs})
}

func (n *Node) handleStatus(env envelope) {
	b := body{
		Type:       "status_ok",
		Boots:      n.boots,
		Replays:    n.replays,
		Rejoins:    n.rejoins,
		FrameDrops: n.wire.drops(),
	}
	if n.g != nil {
		b.Stale = n.staleView(n.self, n.now())
	}
	for m, lc := range n.cores {
		if lc.core.Delivered() {
			b.Messages = append(b.Messages, m)
		}
		if lc.core.Forwarded() {
			b.Forwarded = append(b.Forwarded, m)
		}
		b.NACKs += lc.nacks
	}
	sort.Slice(b.Messages, func(i, j int) bool { return b.Messages[i] < b.Messages[j] })
	sort.Slice(b.Forwarded, func(i, j int) bool { return b.Forwarded[i] < b.Forwarded[j] })
	n.reply(env, b)
}

// liveCore binds one broadcast message's runtime.Core to the node's wire: it
// is the runtime.Transport that turns engine actions into envelopes.
type liveCore struct {
	n     *Node
	msg   int64
	core  *rt.Core
	nacks int
}

var _ rt.Transport = (*liveCore)(nil)

func (lc *liveCore) Broadcast(pkt sim.Packet) {
	m, p := lc.msg, pkt
	// Write-ahead: the forward record is durable before any datagram leaves,
	// so a crash in between replays as "already forwarded" — never twice on
	// the air. The copies themselves are repaired by anti-entropy beacons.
	lc.n.record(journalOp{Op: "forward", Msg: m, Packet: &p})
	lc.n.syncJournal()
	lc.n.g.ForEachNeighbor(lc.n.self, func(u int) {
		lc.n.send(lc.n.names[u], body{Type: "pkt", From: lc.n.self, Message: &m, Packet: &p})
	})
}

func (lc *liveCore) Unicast(to int, pkt sim.Packet, attempt int) {
	m, p := lc.msg, pkt
	lc.n.record(journalOp{Op: "nack_done", Msg: m, From: to, Attempt: attempt})
	lc.n.send(lc.n.names[to], body{Type: "pkt", From: lc.n.self, Attempt: attempt, Message: &m, Packet: &p})
}

func (lc *liveCore) NACK(to int, attempt int) {
	m := lc.msg
	lc.n.send(lc.n.names[to], body{Type: "nack", From: lc.n.self, Attempt: attempt, Message: &m})
}

func (lc *liveCore) AfterTimer(d float64, fn func())    { lc.n.after(d, fn) }
func (lc *liveCore) AfterRecovery(d float64, fn func()) { lc.n.after(d, fn) }

// Down is always false: a live deployment's node is down by being absent,
// not by a fault plan.
func (lc *liveCore) Down() bool { return false }

func (lc *liveCore) Now() float64 { return lc.n.now() }

func (lc *liveCore) NoteDeliver(first bool, at float64) {}
func (lc *liveCore) NoteSource()                        {}
func (lc *liveCore) NoteNACK()                          { lc.nacks++ }
func (lc *liveCore) NoteNonForward()                    {}

// --- wires: how envelopes reach the node ---

// wire is one duplex envelope transport. recv is called from the Run loop
// only; send may be called concurrently with recv but is otherwise confined
// to the handler loop. drops reports how many inbound frames the wire
// discarded as malformed (truncated, oversized, or undecodable); a damaged
// frame is counted and skipped, never a hang or a panic.
type wire interface {
	recv() (envelope, error)
	send(env envelope) error
	drops() int64
}

// peerUpdater is implemented by wires whose peer address book can be rewired
// at runtime (udpWire). A "peers" envelope uses it — the mechanism by which a
// chaos supervisor tells surviving nodes about a restarted peer's new port.
type peerUpdater interface {
	updatePeers(peers map[string]string) error
}

// stdioWire speaks framed JSON over a single duplex byte stream (the
// maelstrom shape: a harness routes envelopes between processes).
type stdioWire struct {
	fr     framer
	mu     sync.Mutex
	nDrops atomic.Int64
}

func (w *stdioWire) recv() (envelope, error) {
	for {
		frame, err := w.fr.ReadFrame()
		if errors.Is(err, errFrameOversize) {
			// The framer already discarded the payload and resynced; count
			// the loss and keep reading.
			w.nDrops.Add(1)
			continue
		}
		if errors.Is(err, errFrameTruncated) {
			// The stream died mid-frame. The partial frame is a counted
			// drop; the stream itself is over, cleanly.
			w.nDrops.Add(1)
			return envelope{}, io.EOF
		}
		if err != nil {
			return envelope{}, err
		}
		if len(bytes.TrimSpace(frame)) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(frame, &env); err != nil {
			w.nDrops.Add(1)
			continue
		}
		return env, nil
	}
}

func (w *stdioWire) drops() int64 { return w.nDrops.Load() }

func (w *stdioWire) send(env envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fr.WriteFrame(b)
}

// udpWire sends each envelope as one JSON datagram directly to its
// destination peer. Peer addresses come from the -peers flag and are also
// learned from incoming traffic, so replies reach clients that were never
// configured.
type udpWire struct {
	conn   *net.UDPConn
	mu     sync.Mutex
	peers  map[string]*net.UDPAddr
	buf    []byte
	nDrops atomic.Int64
}

func newUDPWire(conn *net.UDPConn, peers map[string]*net.UDPAddr) *udpWire {
	if peers == nil {
		peers = make(map[string]*net.UDPAddr)
	}
	return &udpWire{conn: conn, peers: peers, buf: make([]byte, 64<<10)}
}

func (w *udpWire) recv() (envelope, error) {
	for {
		sz, addr, err := w.conn.ReadFromUDP(w.buf)
		if err != nil {
			return envelope{}, err
		}
		var env envelope
		if err := json.Unmarshal(w.buf[:sz], &env); err != nil {
			// A malformed datagram is line noise, not a reason to die. A
			// datagram larger than the read buffer lands here too: the
			// kernel truncates the excess, so the JSON cannot parse.
			w.nDrops.Add(1)
			continue
		}
		if env.Src != "" {
			w.mu.Lock()
			w.peers[env.Src] = addr
			w.mu.Unlock()
		}
		return env, nil
	}
}

func (w *udpWire) drops() int64 { return w.nDrops.Load() }

// updatePeers resolves and installs new peer addresses, replacing existing
// entries by name and leaving unnamed peers alone. All-or-nothing: a single
// unresolvable address rejects the whole update.
func (w *udpWire) updatePeers(peers map[string]string) error {
	resolved := make(map[string]*net.UDPAddr, len(peers))
	for name, hostport := range peers {
		addr, err := net.ResolveUDPAddr("udp", hostport)
		if err != nil {
			return fmt.Errorf("bcastnode: peer %q: %w", name, err)
		}
		resolved[name] = addr
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for name, addr := range resolved {
		w.peers[name] = addr
	}
	return nil
}

func (w *udpWire) send(env envelope) error {
	w.mu.Lock()
	addr := w.peers[env.Dest]
	w.mu.Unlock()
	if addr == nil {
		return fmt.Errorf("bcastnode: no address for peer %q", env.Dest)
	}
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	_, err = w.conn.WriteToUDP(b, addr)
	return err
}

// --- stream framing ---

// framer cuts a byte stream into frames. ReadFrame returns io.EOF at a clean
// end of stream.
type framer interface {
	ReadFrame() ([]byte, error)
	WriteFrame(b []byte) error
}

// lineFramer is the maelstrom framing: one JSON object per newline.
type lineFramer struct {
	r *bufio.Reader
	w io.Writer
}

func newLineFramer(r io.Reader, w io.Writer) *lineFramer {
	return &lineFramer{r: bufio.NewReaderSize(r, 1<<20), w: w}
}

func (f *lineFramer) ReadFrame() ([]byte, error) {
	line, err := f.r.ReadBytes('\n')
	if err == io.EOF && len(bytes.TrimSpace(line)) > 0 {
		return line, nil
	}
	if err != nil {
		return nil, err
	}
	return line, nil
}

func (f *lineFramer) WriteFrame(b []byte) error {
	_, err := f.w.Write(append(b, '\n'))
	return err
}

// maxFrame bounds length-prefixed frames (1 MiB is far beyond any packet a
// protocol here produces).
const maxFrame = 1 << 20

// errFrameOversize reports a frame whose advertised length exceeds maxFrame.
// The framer has already discarded the payload, so the stream is positioned
// at the next frame and the caller may keep reading after counting the drop.
var errFrameOversize = errors.New("bcastnode: oversized frame dropped")

// errFrameTruncated reports a stream that ended in the middle of a frame (a
// partial length prefix or a payload shorter than its prefix promised). The
// stream is over; the caller counts the drop and treats it as a clean EOF.
var errFrameTruncated = errors.New("bcastnode: truncated frame")

// lengthFramer is the binary framing: a 4-byte big-endian length prefix
// followed by the JSON payload.
type lengthFramer struct {
	r io.Reader
	w io.Writer
}

func (f *lengthFramer) ReadFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			// A partial length prefix: the stream died mid-frame.
			return nil, errFrameTruncated
		}
		return nil, err
	}
	sz := binary.BigEndian.Uint32(hdr[:])
	if sz > maxFrame {
		// Discard the oversized payload without buffering it, so a hostile
		// or corrupt prefix cannot balloon memory, then resync at the next
		// frame boundary.
		if _, err := io.CopyN(io.Discard, f.r, int64(sz)); err != nil {
			return nil, errFrameTruncated
		}
		return nil, errFrameOversize
	}
	buf := make([]byte, sz)
	if _, err := io.ReadFull(f.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errFrameTruncated
		}
		return nil, err
	}
	return buf, nil
}

func (f *lengthFramer) WriteFrame(b []byte) error {
	if len(b) > maxFrame {
		return fmt.Errorf("bcastnode: frame of %d bytes exceeds the %d limit", len(b), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.w.Write(b)
	return err
}
