package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"adhocbcast/internal/graph"
	rt "adhocbcast/internal/runtime"
	"adhocbcast/internal/sim"
	"adhocbcast/internal/traffic"
	"adhocbcast/internal/view"
)

// envelope is the maelstrom-style message wrapper: every frame on the wire is
// one envelope, routed by node name.
type envelope struct {
	Src  string `json:"src"`
	Dest string `json:"dest"`
	Body body   `json:"body"`
}

// body is the union of all message bodies the node speaks. Type selects the
// handler; the remaining fields are per-type (unused ones stay zero and are
// omitted on the wire).
type body struct {
	Type      string `json:"type"`
	MsgID     int    `json:"msg_id,omitempty"`
	InReplyTo int    `json:"in_reply_to,omitempty"`

	// init
	NodeID  string   `json:"node_id,omitempty"`
	NodeIDs []string `json:"node_ids,omitempty"`
	// topology: the full adjacency by node name. The paper's protocols
	// decide from k-hop local views; in a deployment nodes gather those via
	// hello exchange, here the harness supplies the topology and each node
	// cuts its own local view out of it.
	Topology map[string][]string `json:"topology,omitempty"`

	// broadcast / read / status: Message identifies one broadcast wave.
	Message  *int64  `json:"message,omitempty"`
	Messages []int64 `json:"messages,omitempty"`

	// protocol traffic (pkt, nack, garble)
	From    int         `json:"from,omitempty"`
	Attempt int         `json:"attempt,omitempty"`
	Packet  *sim.Packet `json:"packet,omitempty"`

	// status_ok
	Forwarded []int64 `json:"forwarded,omitempty"`
	NACKs     int     `json:"nacks,omitempty"`

	// error
	Code int    `json:"code,omitempty"`
	Text string `json:"text,omitempty"`
}

// maelstrom-compatible error codes.
const (
	errNotSupported = 10
	errMalformed    = 12
)

// NodeConfig parameterizes one live node. The protocol and timing fields
// mirror runtime.Config so a bcastnode deployment and a live cluster run the
// same engine configuration.
type NodeConfig struct {
	Protocol       func() sim.Protocol
	Hops           int
	Metric         view.Metric
	PiggybackDepth int
	BackoffWindow  float64
	TransmitDelay  float64
	// TimeScale is the wall-clock duration of one protocol time unit
	// (default 10ms: real-network scale rather than the cluster's 2ms).
	TimeScale    time.Duration
	NACKRecovery bool
	RetryBudget  int
	NACKDelay    float64
	RetryBackoff float64
	Seed         int64
	// Rate, when positive, turns the node into a traffic source: once the
	// first topology is configured it replays its own per-source stream of
	// the shared deterministic traffic plan (internal/traffic, every node a
	// source at Rate messages per time unit over TrafficHorizon units),
	// starting each arrival as a fresh broadcast wave. All nodes run the
	// same (Seed, N)-keyed plan, so a deployment's offered load is
	// reproducible without any coordination traffic.
	Rate float64
	// TrafficHorizon is the generation horizon in time units for Rate
	// (default 400).
	TrafficHorizon float64
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Metric == 0 {
		c.Metric = view.MetricID
	}
	if c.PiggybackDepth == 0 {
		c.PiggybackDepth = 2
	}
	if c.PiggybackDepth < 0 {
		c.PiggybackDepth = 0
	}
	if c.BackoffWindow <= 0 {
		c.BackoffWindow = 8
	}
	if c.TransmitDelay <= 0 {
		c.TransmitDelay = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 10 * time.Millisecond
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.NACKDelay == 0 {
		c.NACKDelay = 0.5
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 1
	}
	if c.TrafficHorizon <= 0 {
		c.TrafficHorizon = 400
	}
	return c
}

// Node is one standalone protocol node: a handler loop around a runtime.Core
// per broadcast message, speaking envelopes over a wire. All protocol state
// is confined to the loop goroutine; the wire reader and timers post
// closures into it.
type Node struct {
	cfg  NodeConfig
	wire wire
	errl *log.Logger

	loop chan func()
	done chan struct{}
	wg   sync.WaitGroup

	name  string
	self  int
	names []string
	index map[string]int
	g     *graph.Graph
	base  []view.Priority
	start time.Time
	msgID int
	cores map[int64]*liveCore

	trafficStarted bool
}

// NewNode builds a node over the given wire.
func NewNode(cfg NodeConfig, w wire) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("bcastnode: NodeConfig.Protocol is nil")
	}
	return &Node{
		cfg:   cfg,
		wire:  w,
		errl:  log.New(log.Writer(), "bcastnode: ", 0),
		loop:  make(chan func(), 64),
		done:  make(chan struct{}),
		cores: make(map[int64]*liveCore),
	}, nil
}

// Run reads envelopes until the wire closes, dispatching every message —
// and every timer the protocol sets — onto the single handler loop. It
// returns nil on a clean wire shutdown (EOF or closed socket).
func (n *Node) Run() error {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case fn := <-n.loop:
				fn()
			case <-n.done:
				// Drain what the reader enqueued before EOF so one-shot
				// piped input (messages then immediate close) still gets
				// every reply; timers that fire after this are dropped.
				for {
					select {
					case fn := <-n.loop:
						fn()
					default:
						return
					}
				}
			}
		}
	}()
	var rerr error
	for {
		env, err := n.wire.recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				rerr = err
			}
			break
		}
		n.post(func() { n.handle(env) })
	}
	close(n.done)
	n.wg.Wait()
	return rerr
}

// post hands fn to the loop goroutine; it is dropped if the node is shutting
// down.
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.done:
	}
}

// after schedules fn on the loop after d protocol time units.
func (n *Node) after(d float64, fn func()) {
	time.AfterFunc(time.Duration(d*float64(n.cfg.TimeScale)), func() { n.post(fn) })
}

// now returns the node's clock in protocol time units.
func (n *Node) now() float64 {
	return float64(time.Since(n.start)) / float64(n.cfg.TimeScale)
}

func (n *Node) handle(env envelope) {
	switch env.Body.Type {
	case "init":
		n.handleInit(env)
	case "topology":
		n.handleTopology(env)
	case "broadcast":
		n.handleBroadcast(env)
	case "read":
		n.handleRead(env)
	case "status":
		n.handleStatus(env)
	case "pkt":
		n.handlePkt(env)
	case "nack":
		n.handleNACK(env)
	case "garble":
		n.handleGarble(env)
	default:
		n.replyError(env, errNotSupported, fmt.Sprintf("unsupported message type %q", env.Body.Type))
	}
}

func (n *Node) send(dest string, b body) {
	n.msgID++
	b.MsgID = n.msgID
	if err := n.wire.send(envelope{Src: n.name, Dest: dest, Body: b}); err != nil {
		n.errl.Printf("send to %s: %v", dest, err)
	}
}

func (n *Node) reply(env envelope, b body) {
	b.InReplyTo = env.Body.MsgID
	n.send(env.Src, b)
}

func (n *Node) replyError(env envelope, code int, text string) {
	n.reply(env, body{Type: "error", Code: code, Text: text})
}

func (n *Node) handleInit(env envelope) {
	b := env.Body
	n.names = b.NodeIDs
	n.index = make(map[string]int, len(b.NodeIDs))
	for i, name := range b.NodeIDs {
		n.index[name] = i
	}
	self, ok := n.index[b.NodeID]
	if !ok {
		n.replyError(env, errMalformed, fmt.Sprintf("node_id %q not in node_ids", b.NodeID))
		return
	}
	n.name = b.NodeID
	n.self = self
	n.start = time.Now()
	n.reply(env, body{Type: "init_ok"})
}

func (n *Node) handleTopology(env envelope) {
	if n.name == "" {
		n.replyError(env, errMalformed, "topology before init")
		return
	}
	g := graph.New(len(n.names))
	for name, nbrs := range env.Body.Topology {
		u, ok := n.index[name]
		if !ok {
			n.replyError(env, errMalformed, fmt.Sprintf("unknown node %q in topology", name))
			return
		}
		for _, nb := range nbrs {
			v, ok := n.index[nb]
			if !ok {
				n.replyError(env, errMalformed, fmt.Sprintf("unknown neighbor %q of %q", nb, name))
				return
			}
			if err := g.AddEdge(u, v); err != nil {
				n.replyError(env, errMalformed, err.Error())
				return
			}
		}
	}
	n.g = g
	n.base = view.BasePriorities(g, n.cfg.Metric)
	// Topology changes reset all broadcast state: views were cut from the
	// old graph.
	n.cores = make(map[int64]*liveCore)
	n.reply(env, body{Type: "topology_ok"})
	n.startTraffic()
}

// trafficMessageID tags node-generated broadcast waves: arrival seq of node
// self maps to a message id at or above 1<<32, so self-injected waves never
// collide with harness-injected messages (which stay below 2^32 in practice).
func trafficMessageID(self, seq int) int64 {
	return int64(self+1)<<32 | int64(seq)
}

// startTraffic arms the node's traffic generator on the first configured
// topology: it expands the shared deterministic plan, keeps only its own
// arrivals, and schedules each as a self-originated broadcast wave. Later
// topology changes do not re-arm it — pending timers keep firing and start
// their waves on whatever topology is current.
func (n *Node) startTraffic() {
	if n.cfg.Rate <= 0 || n.trafficStarted {
		return
	}
	n.trafficStarted = true
	plan, err := traffic.Poisson(traffic.Config{
		N:       len(n.names),
		Sources: len(n.names),
		Rate:    n.cfg.Rate,
		Horizon: n.cfg.TrafficHorizon,
		Seed:    n.cfg.Seed,
	})
	if err != nil {
		n.errl.Printf("traffic generator: %v", err)
		return
	}
	seq := 0
	for _, m := range plan.Messages {
		if m.Source != n.self {
			continue
		}
		msg := trafficMessageID(n.self, seq)
		seq++
		n.after(m.At, func() {
			if n.g == nil {
				return
			}
			lc := n.core(msg)
			if !lc.core.Delivered() {
				lc.core.Start()
			}
		})
	}
}

// core returns (building on first use) the runtime core of one broadcast
// message.
func (n *Node) core(msg int64) *liveCore {
	if lc, ok := n.cores[msg]; ok {
		return lc
	}
	lc := &liveCore{n: n, msg: msg}
	lv := view.NewLocal(n.g, n.self, n.cfg.Hops, n.base)
	lc.core = rt.NewCore(n.self, n.cfg.Protocol(), lv, n.g, rt.CoreConfig{
		N:              len(n.names),
		PiggybackDepth: n.cfg.PiggybackDepth,
		BackoffWindow:  n.cfg.BackoffWindow,
		TransmitDelay:  n.cfg.TransmitDelay,
		NACKRecovery:   n.cfg.NACKRecovery,
		RetryBudget:    n.cfg.RetryBudget,
		NACKDelay:      n.cfg.NACKDelay,
		RetryBackoff:   n.cfg.RetryBackoff,
	}, lc, rt.StreamSeed(n.cfg.Seed, "bcastnode.backoff", n.self, int(msg)))
	lc.core.Init()
	n.cores[msg] = lc
	return lc
}

// ready guards handlers that need a configured topology.
func (n *Node) ready(env envelope, needMessage bool) bool {
	if n.g == nil {
		n.replyError(env, errMalformed, "no topology configured")
		return false
	}
	if needMessage && env.Body.Message == nil {
		n.replyError(env, errMalformed, fmt.Sprintf("%s without message", env.Body.Type))
		return false
	}
	return true
}

func (n *Node) handleBroadcast(env envelope) {
	if !n.ready(env, true) {
		return
	}
	lc := n.core(*env.Body.Message)
	if !lc.core.Delivered() {
		lc.core.Start()
	}
	n.reply(env, body{Type: "broadcast_ok"})
}

func (n *Node) handlePkt(env envelope) {
	if !n.ready(env, true) {
		return
	}
	if env.Body.Packet == nil {
		n.replyError(env, errMalformed, "pkt without packet")
		return
	}
	n.core(*env.Body.Message).core.HandlePacket(env.Body.From, *env.Body.Packet, n.now())
}

func (n *Node) handleNACK(env envelope) {
	if !n.ready(env, true) {
		return
	}
	n.core(*env.Body.Message).core.HandleNACK(env.Body.From, env.Body.Attempt)
}

// handleGarble reports a detectable drop to the recovery layer: the node
// overheard attempt `attempt` from `from` but could not decode it. A real
// radio would raise this itself; over this transport the harness (or a
// relaying proxy) injects it when it drops a pkt.
func (n *Node) handleGarble(env envelope) {
	if !n.ready(env, true) {
		return
	}
	n.core(*env.Body.Message).core.HandleGarble(env.Body.From, env.Body.Attempt)
}

func (n *Node) handleRead(env envelope) {
	msgs := make([]int64, 0, len(n.cores))
	for m, lc := range n.cores {
		if lc.core.Delivered() {
			msgs = append(msgs, m)
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	n.reply(env, body{Type: "read_ok", Messages: msgs})
}

func (n *Node) handleStatus(env envelope) {
	b := body{Type: "status_ok"}
	for m, lc := range n.cores {
		if lc.core.Delivered() {
			b.Messages = append(b.Messages, m)
		}
		if lc.core.Forwarded() {
			b.Forwarded = append(b.Forwarded, m)
		}
		b.NACKs += lc.nacks
	}
	sort.Slice(b.Messages, func(i, j int) bool { return b.Messages[i] < b.Messages[j] })
	sort.Slice(b.Forwarded, func(i, j int) bool { return b.Forwarded[i] < b.Forwarded[j] })
	n.reply(env, b)
}

// liveCore binds one broadcast message's runtime.Core to the node's wire: it
// is the runtime.Transport that turns engine actions into envelopes.
type liveCore struct {
	n     *Node
	msg   int64
	core  *rt.Core
	nacks int
}

var _ rt.Transport = (*liveCore)(nil)

func (lc *liveCore) Broadcast(pkt sim.Packet) {
	m, p := lc.msg, pkt
	lc.n.g.ForEachNeighbor(lc.n.self, func(u int) {
		lc.n.send(lc.n.names[u], body{Type: "pkt", From: lc.n.self, Message: &m, Packet: &p})
	})
}

func (lc *liveCore) Unicast(to int, pkt sim.Packet, attempt int) {
	m, p := lc.msg, pkt
	lc.n.send(lc.n.names[to], body{Type: "pkt", From: lc.n.self, Attempt: attempt, Message: &m, Packet: &p})
}

func (lc *liveCore) NACK(to int, attempt int) {
	m := lc.msg
	lc.n.send(lc.n.names[to], body{Type: "nack", From: lc.n.self, Attempt: attempt, Message: &m})
}

func (lc *liveCore) AfterTimer(d float64, fn func())    { lc.n.after(d, fn) }
func (lc *liveCore) AfterRecovery(d float64, fn func()) { lc.n.after(d, fn) }

// Down is always false: a live deployment's node is down by being absent,
// not by a fault plan.
func (lc *liveCore) Down() bool { return false }

func (lc *liveCore) Now() float64 { return lc.n.now() }

func (lc *liveCore) NoteDeliver(first bool, at float64) {}
func (lc *liveCore) NoteSource()                        {}
func (lc *liveCore) NoteNACK()                          { lc.nacks++ }
func (lc *liveCore) NoteNonForward()                    {}

// --- wires: how envelopes reach the node ---

// wire is one duplex envelope transport. recv is called from the Run loop
// only; send may be called concurrently with recv but is otherwise confined
// to the handler loop.
type wire interface {
	recv() (envelope, error)
	send(env envelope) error
}

// stdioWire speaks framed JSON over a single duplex byte stream (the
// maelstrom shape: a harness routes envelopes between processes).
type stdioWire struct {
	fr framer
	mu sync.Mutex
}

func (w *stdioWire) recv() (envelope, error) {
	for {
		frame, err := w.fr.ReadFrame()
		if err != nil {
			return envelope{}, err
		}
		if len(bytes.TrimSpace(frame)) == 0 {
			continue
		}
		var env envelope
		if err := json.Unmarshal(frame, &env); err != nil {
			return envelope{}, fmt.Errorf("bcastnode: bad frame: %w", err)
		}
		return env, nil
	}
}

func (w *stdioWire) send(env envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fr.WriteFrame(b)
}

// udpWire sends each envelope as one JSON datagram directly to its
// destination peer. Peer addresses come from the -peers flag and are also
// learned from incoming traffic, so replies reach clients that were never
// configured.
type udpWire struct {
	conn  *net.UDPConn
	mu    sync.Mutex
	peers map[string]*net.UDPAddr
	buf   []byte
}

func newUDPWire(conn *net.UDPConn, peers map[string]*net.UDPAddr) *udpWire {
	if peers == nil {
		peers = make(map[string]*net.UDPAddr)
	}
	return &udpWire{conn: conn, peers: peers, buf: make([]byte, 64<<10)}
}

func (w *udpWire) recv() (envelope, error) {
	for {
		sz, addr, err := w.conn.ReadFromUDP(w.buf)
		if err != nil {
			return envelope{}, err
		}
		var env envelope
		if err := json.Unmarshal(w.buf[:sz], &env); err != nil {
			// A malformed datagram is line noise, not a reason to die.
			continue
		}
		if env.Src != "" {
			w.mu.Lock()
			w.peers[env.Src] = addr
			w.mu.Unlock()
		}
		return env, nil
	}
}

func (w *udpWire) send(env envelope) error {
	w.mu.Lock()
	addr := w.peers[env.Dest]
	w.mu.Unlock()
	if addr == nil {
		return fmt.Errorf("bcastnode: no address for peer %q", env.Dest)
	}
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	_, err = w.conn.WriteToUDP(b, addr)
	return err
}

// --- stream framing ---

// framer cuts a byte stream into frames. ReadFrame returns io.EOF at a clean
// end of stream.
type framer interface {
	ReadFrame() ([]byte, error)
	WriteFrame(b []byte) error
}

// lineFramer is the maelstrom framing: one JSON object per newline.
type lineFramer struct {
	r *bufio.Reader
	w io.Writer
}

func newLineFramer(r io.Reader, w io.Writer) *lineFramer {
	return &lineFramer{r: bufio.NewReaderSize(r, 1<<20), w: w}
}

func (f *lineFramer) ReadFrame() ([]byte, error) {
	line, err := f.r.ReadBytes('\n')
	if err == io.EOF && len(bytes.TrimSpace(line)) > 0 {
		return line, nil
	}
	if err != nil {
		return nil, err
	}
	return line, nil
}

func (f *lineFramer) WriteFrame(b []byte) error {
	_, err := f.w.Write(append(b, '\n'))
	return err
}

// maxFrame bounds length-prefixed frames (1 MiB is far beyond any packet a
// protocol here produces).
const maxFrame = 1 << 20

// lengthFramer is the binary framing: a 4-byte big-endian length prefix
// followed by the JSON payload.
type lengthFramer struct {
	r io.Reader
	w io.Writer
}

func (f *lengthFramer) ReadFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		return nil, err
	}
	sz := binary.BigEndian.Uint32(hdr[:])
	if sz > maxFrame {
		return nil, fmt.Errorf("bcastnode: frame of %d bytes exceeds the %d limit", sz, maxFrame)
	}
	buf := make([]byte, sz)
	if _, err := io.ReadFull(f.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

func (f *lengthFramer) WriteFrame(b []byte) error {
	if len(b) > maxFrame {
		return fmt.Errorf("bcastnode: frame of %d bytes exceeds the %d limit", len(b), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := f.w.Write(b)
	return err
}
