package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gridArgs builds the common flag set for a run against the smoke spec.
func gridArgs(cache, out string, extra ...string) []string {
	args := []string{"-spec", filepath.Join("testdata", "smoke.json"), "-cache", cache, "-out", out}
	return append(args, extra...)
}

func TestGridColdWarmVerify(t *testing.T) {
	cache, out := t.TempDir(), t.TempDir()

	// Cold run computes every point.
	var cold bytes.Buffer
	if err := run(gridArgs(cache, out), &cold); err != nil {
		t.Fatalf("cold run: %v\n%s", err, cold.String())
	}
	if !strings.Contains(cold.String(), "0 cached") {
		t.Fatalf("cold run summary: %q", cold.String())
	}
	table1, err := os.ReadFile(filepath.Join(out, "smoke.txt"))
	if err != nil {
		t.Fatal(err)
	}

	// Warm rerun into a fresh output directory must be all cache hits
	// (-require-cached proves it) and byte-identical.
	out2 := t.TempDir()
	var warm bytes.Buffer
	if err := run(gridArgs(cache, out2, "-require-cached"), &warm); err != nil {
		t.Fatalf("warm run: %v\n%s", err, warm.String())
	}
	if !strings.Contains(warm.String(), "0 computed") {
		t.Fatalf("warm run summary: %q", warm.String())
	}
	table2, err := os.ReadFile(filepath.Join(out2, "smoke.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(table1, table2) {
		t.Fatalf("warm table differs from cold table:\ncold: %q\nwarm: %q", table1, table2)
	}

	// -verify passes on the intact store (against the second output dir,
	// whose manifest was written last).
	var verify bytes.Buffer
	if err := run(gridArgs(cache, out2, "-verify"), &verify); err != nil {
		t.Fatalf("verify: %v\n%s", err, verify.String())
	}
	if !strings.Contains(verify.String(), "verified") {
		t.Fatalf("verify output: %q", verify.String())
	}

	// A flipped byte in any cached point file fails -verify.
	points, err := filepath.Glob(filepath.Join(cache, "points", "*.jsonl"))
	if err != nil || len(points) == 0 {
		t.Fatalf("point files: %v (%d)", err, len(points))
	}
	data, err := os.ReadFile(points[0])
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	mut[len(mut)/2] ^= 0x01
	if err := os.WriteFile(points[0], mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(gridArgs(cache, out2, "-verify"), &bytes.Buffer{}); err == nil {
		t.Fatal("tampered point file passed -verify")
	}
}

func TestGridList(t *testing.T) {
	cache, out := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	if err := run(gridArgs(cache, out, "-list"), &buf); err != nil {
		t.Fatalf("list: %v\n%s", err, buf.String())
	}
	s := buf.String()
	if !strings.Contains(s, "miss") || strings.Contains(s, "cached ") {
		t.Fatalf("cold -list output: %q", s)
	}
	// Listing computes nothing: no point files, no tables.
	if got, _ := filepath.Glob(filepath.Join(cache, "points", "*.jsonl")); len(got) != 0 {
		t.Fatalf("-list created point files: %v", got)
	}
	if _, err := os.Stat(filepath.Join(out, "smoke.txt")); err == nil {
		t.Fatal("-list wrote a table")
	}
}

func TestGridMissingNamedSpecIsError(t *testing.T) {
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "nope.json"), "-cache", t.TempDir(), "-list"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -spec file accepted")
	}
}
