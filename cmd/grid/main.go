// Command grid executes the repository's declarative experiment grid with
// content-addressed result caching: every committed results_*.txt table is
// regenerated from grid.json, each data point's result is stored under the
// SHA-256 of its canonical configuration, and reruns skip every point whose
// cached file verifies — an interrupted sweep resumes where it died.
//
// Usage:
//
//	grid                            # run the full grid (grid.json, cache in .gridcache)
//	grid -table results_all.txt     # regenerate one table
//	grid -list                      # enumerate points and their cache state, compute nothing
//	grid -require-cached            # fail on any cache miss (prove a warm rerun)
//	grid -verify                    # check every cached point, manifest, and table hash
//	grid -spec grid.json -cache .gridcache -out .   # the defaults, spelled out
//
// Cached point files and table manifests are JSONL sealed with obsv/v1 hash
// chains and written atomically, so kills leave no partial state and -verify
// detects any flipped byte.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"

	"adhocbcast/internal/grid"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grid:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	flags := flag.NewFlagSet("grid", flag.ContinueOnError)
	var (
		specPath = flags.String("spec", "grid.json", "grid spec file (built-in default spec if the file does not exist)")
		cacheDir = flags.String("cache", ".gridcache", "content-addressed point cache directory")
		outDir   = flags.String("out", ".", "directory generated tables are written to")
		tables   = flags.String("table", "", "comma-separated table outputs to run (default all)")
		list     = flags.Bool("list", false, "list grid points and their cache state without computing")
		verify   = flags.Bool("verify", false, "verify cached points, manifests, and table hashes, then exit")
		require  = flags.Bool("require-cached", false, "fail on any cache miss instead of computing")
		par      = flags.Int("parallel", 1, "replicates evaluated concurrently per data point (results are identical for any value)")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	cache, err := grid.OpenCache(*cacheDir)
	if err != nil {
		return err
	}
	opts := grid.Options{
		Spec:                 spec,
		Cache:                cache,
		OutDir:               *outDir,
		RequireCached:        *require,
		ReplicateParallelism: *par,
		Log: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	}
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			opts.Tables = append(opts.Tables, strings.TrimSpace(t))
		}
	}
	switch {
	case *verify:
		points, err := grid.Verify(opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "verified %d cached point(s)\n", points)
		return nil
	case *list:
		points, err := grid.List(opts)
		if err != nil {
			return err
		}
		cached := 0
		for _, p := range points {
			state := "miss"
			if p.Cached {
				state = "cached"
				cached++
			}
			fmt.Fprintf(out, "%-6s %.12s %s\n", state, p.Hash, p.Point)
		}
		fmt.Fprintf(out, "%d point(s), %d cached\n", len(points), cached)
		return nil
	default:
		st, err := grid.Run(opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d point(s): %d cached, %d computed\n", st.Points, st.Hits, st.Misses)
		return nil
	}
}

// loadSpec reads the spec file, falling back to the built-in default grid
// when the default path does not exist (so the tool works from any directory
// without a spec); a named -spec that is missing is still an error.
func loadSpec(path string) (grid.Spec, error) {
	spec, err := grid.LoadSpec(path)
	if errors.Is(err, fs.ErrNotExist) && path == "grid.json" {
		return grid.DefaultSpec(), nil
	}
	return spec, err
}
