package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReportCarriesSchema(t *testing.T) {
	data, err := json.Marshal(Report{Schema: ReportSchema})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":"benchjson/v1"`) {
		t.Fatalf("report JSON missing schema: %s", data)
	}
}

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFigure10Timing/Static-8   100   1032029 ns/op   1236703 B/op   6700 allocs/op   24.5 forward/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFigure10Timing/Static-8" || r.Iterations != 100 {
		t.Fatalf("header parsed wrong: %+v", r)
	}
	if r.NsPerOp != 1032029 || r.BytesPerOp != 1236703 || r.AllocsPerOp != 6700 {
		t.Fatalf("units parsed wrong: %+v", r)
	}
	if r.Metrics["forward/op"] != 24.5 {
		t.Fatalf("custom metric lost: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tadhocbcast\t1.2s",
		"BenchmarkBroken notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
