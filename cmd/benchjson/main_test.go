package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportCarriesSchema(t *testing.T) {
	data, err := json.Marshal(Report{Schema: ReportSchema})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":"benchjson/v1"`) {
		t.Fatalf("report JSON missing schema: %s", data)
	}
}

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFigure10Timing/Static-8   100   1032029 ns/op   1236703 B/op   6700 allocs/op   24.5 forward/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFigure10Timing/Static-8" || r.Iterations != 100 {
		t.Fatalf("header parsed wrong: %+v", r)
	}
	if r.NsPerOp != 1032029 || r.BytesPerOp != 1236703 || r.AllocsPerOp != 6700 {
		t.Fatalf("units parsed wrong: %+v", r)
	}
	if r.Metrics["forward/op"] != 24.5 {
		t.Fatalf("custom metric lost: %+v", r.Metrics)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFigure10Timing/Static-8":      "BenchmarkFigure10Timing/Static",
		"BenchmarkFigure10Timing/Static":        "BenchmarkFigure10Timing/Static",
		"BenchmarkReplicationPoint/workers=1-8": "BenchmarkReplicationPoint/workers=1",
		"BenchmarkReplicationPoint/workers=1":   "BenchmarkReplicationPoint/workers=1",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunCompare(t *testing.T) {
	baseline := Report{Schema: ReportSchema, Results: []Result{
		{Name: "BenchmarkFigure10Timing/Static", NsPerOp: 1000},
		{Name: "BenchmarkFigure10Timing/FR", NsPerOp: 2000},
	}}
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	within := []Result{
		{Name: "BenchmarkFigure10Timing/Static-8", NsPerOp: 1200},
		{Name: "BenchmarkFigure10Timing/FR-8", NsPerOp: 1900},
		{Name: "BenchmarkNewWithoutBaseline-8", NsPerOp: 9e9},
	}
	if err := runCompare(within, path, "Figure10Timing", 0.25); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v", err)
	}

	regressed := []Result{{Name: "BenchmarkFigure10Timing/Static-8", NsPerOp: 1300}}
	err = runCompare(regressed, path, "Figure10Timing", 0.25)
	if err == nil || !strings.Contains(err.Error(), "regressions") {
		t.Fatalf("30%% regression passed the gate: %v", err)
	}

	if err := runCompare(within, path, "NoSuchBenchmark", 0.25); err == nil {
		t.Fatal("empty comparison set passed the gate (pattern typo would go unnoticed)")
	}

	// A gated baseline benchmark absent from stdin must fail the gate:
	// deleting or renaming a benchmark cannot silently retire its check.
	missingFR := []Result{
		{Name: "BenchmarkFigure10Timing/Static-8", NsPerOp: 1000},
	}
	err = runCompare(missingFR, path, "Figure10Timing", 0.25)
	if err == nil {
		t.Fatal("baseline benchmark missing from stdin passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkFigure10Timing/FR") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing-benchmark error does not name the benchmark: %v", err)
	}
	// The renamed survivor must be reported too, not just absorbed.
	renamed := []Result{
		{Name: "BenchmarkFigure10Timing/StaticV2-8", NsPerOp: 1},
		{Name: "BenchmarkFigure10Timing/FR-8", NsPerOp: 1900},
	}
	err = runCompare(renamed, path, "Figure10Timing", 0.25)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFigure10Timing/Static") {
		t.Fatalf("renamed benchmark not reported as missing: %v", err)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tadhocbcast\t1.2s",
		"BenchmarkBroken notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
