// Command benchjson converts `go test -bench` output read from stdin into a
// machine-readable JSON report, so benchmark runs can be committed and
// compared across commits without scraping text.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -out BENCH_results.json
//	go test -bench=. -benchmem . | benchjson -old BENCH_results.json -out BENCH_results.json
//	go test -bench=Figure10 . | benchjson -compare BENCH_results.json
//
// With -old, the previous report's results are embedded under "previous" so a
// committed file carries its own before/after comparison.
//
// With -compare, no report is written: instead the fresh results on stdin are
// checked against the named committed report, and the run fails (exit 1) when
// any benchmark matching -match regressed in ns/op by more than -tolerance.
// Benchmarks absent from the baseline pass trivially, so adding a benchmark
// never breaks the gate; the reverse is an error — a baseline benchmark
// matching -match with no fresh result on stdin fails the gate, so deleting
// or renaming a gated benchmark cannot silently retire its check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ReportSchema versions the emitted document so downstream tooling can
// detect layout changes; bump it whenever Report or Result fields change.
const ReportSchema = "benchjson/v1"

// Report is the emitted document.
type Report struct {
	Schema   string   `json:"schema"`
	Results  []Result `json:"results"`
	Previous []Result `json:"previous,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	old := flag.String("old", "", "previous report whose results to embed under \"previous\"")
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to gate against instead of emitting JSON")
	match := flag.String("match", "Figure10Timing", "regexp of benchmark names the -compare gate checks")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression for -compare")
	flag.Parse()

	report := Report{Schema: ReportSchema}
	if *old != "" {
		if data, err := os.ReadFile(*old); err == nil {
			var prev Report
			if err := json.Unmarshal(data, &prev); err != nil {
				return fmt.Errorf("parse %s: %w", *old, err)
			}
			// Pre-versioned reports have no schema field; anything else
			// must match what this tool writes.
			if prev.Schema != "" && prev.Schema != ReportSchema {
				return fmt.Errorf("%s: schema %q, want %q", *old, prev.Schema, ReportSchema)
			}
			report.Previous = prev.Results
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the human-readable run stays visible
		if r, ok := parseLine(line); ok {
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	if *compare != "" {
		return runCompare(report.Results, *compare, *match, *tolerance)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// runCompare gates fresh results against a committed baseline report: every
// fresh benchmark whose name matches the pattern and appears in the baseline
// must not exceed the baseline's ns/op by more than the tolerance fraction,
// and every baseline benchmark matching the pattern must appear on stdin —
// a gated benchmark that disappears (deleted or renamed) fails the gate
// instead of passing it vacuously. Benchmark names carry a -GOMAXPROCS
// suffix that varies across machines, so names are compared with the suffix
// stripped.
func runCompare(fresh []Result, baselinePath, pattern string, tolerance float64) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -match pattern: %w", err)
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	base := make(map[string]float64, len(baseline.Results))
	for _, r := range baseline.Results {
		base[trimProcs(r.Name)] = r.NsPerOp
	}
	seen := make(map[string]bool, len(fresh))
	checked := 0
	var regressions []string
	for _, r := range fresh {
		name := trimProcs(r.Name)
		seen[name] = true
		if !re.MatchString(name) {
			continue
		}
		want, ok := base[name]
		if !ok || want <= 0 {
			continue
		}
		checked++
		if r.NsPerOp > want*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
				name, r.NsPerOp, want, 100*(r.NsPerOp/want-1), 100*tolerance))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regressions vs %s:\n  %s",
			baselinePath, strings.Join(regressions, "\n  "))
	}
	var missing []string
	for name := range base {
		if re.MatchString(name) && !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("baseline benchmark(s) matching %q missing from stdin (deleted or renamed? update %s): %s",
			pattern, baselinePath, strings.Join(missing, ", "))
	}
	if checked == 0 {
		return fmt.Errorf("no stdin benchmark matching %q has a baseline in %s", pattern, baselinePath)
	}
	fmt.Printf("benchjson: %d benchmark(s) within %.0f%% of %s\n", checked, 100*tolerance, baselinePath)
	return nil
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/bar-8   1234   9876 ns/op   42 B/op   7 allocs/op   3.5 forward/op
//
// The value-unit pairs after the iteration count are free-form; ns/op, B/op
// and allocs/op go to dedicated fields, anything else into Metrics.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, r.NsPerOp > 0
}
