// Command experiments regenerates the paper's evaluation figures and Table 1
// as text tables.
//
// Usage:
//
//	experiments -fig 10            # one figure (10..16)
//	experiments -all               # every figure
//	experiments -table1            # Table 1
//	experiments -fig 15 -paper     # full ±1% CI criterion (slow)
//	experiments -ext mobility      # extension experiments and ablations
//	experiments -ext crash -crashfracs 0,0.1,0.3   # degradation sweeps
//	experiments -all -parallel 4   # parallel replication, identical output
//	experiments -fig 10 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"adhocbcast/internal/experiments"
	"adhocbcast/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "", "figure id to reproduce (10..16)")
		all    = fs.Bool("all", false, "reproduce every figure")
		table1 = fs.Bool("table1", false, "print Table 1")
		ext    = fs.String("ext", "", "extension experiment: mobility, reliability, piggyback, backoff, visitedunion, cluster, latency, crash, crashforward, loss")
		paper  = fs.Bool("paper", false, "use the paper's ±1% CI replication criterion")
		seed   = fs.Int64("seed", 42, "base workload seed")
		svgDir = fs.String("svgdir", "", "also write each figure as an SVG chart into this directory")
		sizes  = fs.String("sizes", "", "comma-separated network sizes (default 20..100)")
		crash  = fs.String("crashfracs", "", "comma-separated crash fractions for -ext crash/crashforward (default 0,0.05,0.1,0.2,0.3)")
		loss   = fs.String("lossrates", "", "comma-separated loss rates for -ext loss (default 0,0.05,0.1,0.2,0.3)")
		par    = fs.Int("parallel", 1, "replicates evaluated concurrently per data point (results are identical for any value)")
		cpu    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mem    = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		f, err := os.Create(*mem)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *table1 {
		fmt.Print(experiments.Table1())
		return nil
	}
	rc := experiments.RunConfig{Seed: *seed, ReplicateParallelism: *par}
	if *paper {
		rc.Replicate = experiments.Paper()
	}
	if *sizes != "" {
		for _, tok := range strings.Split(*sizes, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil {
				return fmt.Errorf("bad -sizes entry %q: %w", tok, err)
			}
			rc.Sizes = append(rc.Sizes, n)
		}
	}
	var err error
	if rc.CrashFractions, err = parseFloats(*crash, "-crashfracs"); err != nil {
		return err
	}
	if rc.LossRates, err = parseFloats(*loss, "-lossrates"); err != nil {
		return err
	}
	emit := func(f experiments.Figure) error {
		fmt.Println(experiments.Format(f))
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		name := filepath.Join(*svgDir, "figure-"+sanitize(f.ID)+".svg")
		out, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := render.Chart(out, f); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", name)
		return nil
	}
	if *ext != "" {
		f, err := experiments.ExtensionByID(*ext, rc)
		if err != nil {
			return err
		}
		return emit(f)
	}
	ids := []string{*fig}
	if *all {
		ids = experiments.AllFigureIDs()
	} else if *fig == "" {
		fs.Usage()
		return fmt.Errorf("need -fig, -all, -ext, or -table1")
	}
	for _, id := range ids {
		f, err := experiments.FigureByID(id, rc)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	return nil
}

// parseFloats parses a comma-separated float list; "" yields nil (defaults).
func parseFloats(s, flagName string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		var x float64
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &x); err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, tok, err)
		}
		out = append(out, x)
	}
	return out, nil
}

// sanitize keeps figure ids filesystem-safe.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, id)
}
