// Command experiments regenerates the paper's evaluation figures and Table 1
// as text tables.
//
// Usage:
//
//	experiments -fig 10            # one figure (10..16)
//	experiments -all               # every figure
//	experiments -table1            # Table 1
//	experiments -fig 15 -paper     # full ±1% CI criterion (slow)
//	experiments -ext mobility      # extension experiments and ablations
//	experiments -ext crash -crashfracs 0,0.1,0.3   # degradation sweeps
//	experiments -scale             # large-n sweep (1k..1M nodes, d=18)
//	experiments -scale -scalesizes 1000,5000 -scalereps 3   # trimmed sweep
//	experiments -all -parallel 4   # parallel replication, identical output
//	experiments -fig 10 -cpuprofile cpu.out -memprofile mem.out
//	experiments -fig 10 -tracedir traces -progress   # JSONL export + live progress
//	experiments -all -paper -debugaddr localhost:6060   # expvar/pprof during a long sweep
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"adhocbcast/internal/experiments"
	"adhocbcast/internal/obsv"
	"adhocbcast/internal/render"
	"adhocbcast/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "", "figure id to reproduce (10..16)")
		all    = fs.Bool("all", false, "reproduce every figure")
		table1 = fs.Bool("table1", false, "print Table 1")
		ext    = fs.String("ext", "", "extension experiment: mobility, reliability, piggyback, backoff, visitedunion, cluster, latency, crash, crashforward, loss, helloloss, hellolossforward, hellolosslatency, restart, restartlatency, load")
		scale  = fs.Bool("scale", false, "run the large-n scale sweep (delivery/forward/latency beyond the paper's n=100)")
		ssizes = fs.String("scalesizes", "", "comma-separated network sizes for -scale (default 1000,5000,10000,25000,100000,1000000)")
		sdeg   = fs.Int("scaledegree", 0, "average degree for -scale (default 18; sparse degrees are not connectable at large n)")
		sreps  = fs.Int("scalereps", 0, "replicates per -scale point (default 5)")
		paper  = fs.Bool("paper", false, "use the paper's ±1% CI replication criterion")
		seed   = fs.Int64("seed", 42, "base workload seed")
		svgDir = fs.String("svgdir", "", "also write each figure as an SVG chart into this directory")
		sizes  = fs.String("sizes", "", "comma-separated network sizes (default 20..100)")
		crash  = fs.String("crashfracs", "", "comma-separated crash fractions for -ext crash/crashforward (default 0,0.05,0.1,0.2,0.3)")
		loss   = fs.String("lossrates", "", "comma-separated loss rates for -ext loss (default 0,0.05,0.1,0.2,0.3)")
		hello  = fs.String("hellorates", "", "comma-separated hello loss rates for -ext helloloss* (default 0,0.05,0.1,0.2,0.3)")
		rrates = fs.String("restartrates", "", "comma-separated restart fractions for -ext restart* (default 0,0.1,0.2,0.3,0.4)")
		lrates = fs.String("loadrates", "", "comma-separated offered loads (sessions/slot) for -ext load (default 0.02,0.05,0.1,0.2,0.4)")
		lreps  = fs.Int("loadreps", 0, "replicates per -ext load point (default 5)")
		par    = fs.Int("parallel", 1, "replicates evaluated concurrently per data point (results are identical for any value)")
		cpu    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mem    = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		trace  = fs.String("tracedir", "", "export per-replicate JSONL run records and event traces into this directory (one file per data point)")
		prog   = fs.Bool("progress", false, "print replication progress (replicates done, relative CI, estimated total) to stderr")
		debug  = fs.String("debugaddr", "", "serve expvar and pprof on this address (e.g. localhost:6060) with live replication counters under \"experiments\"")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace != "" {
		// Fail now, not after hours of sweeping: trace export opens its
		// files per data point, so an unwritable directory would otherwise
		// surface mid-run.
		if err := validateWritableDir(*trace); err != nil {
			return fmt.Errorf("-tracedir: %w", err)
		}
	}
	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		f, err := os.Create(*mem)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *table1 {
		fmt.Print(experiments.Table1())
		return nil
	}
	rc := experiments.RunConfig{Seed: *seed, ReplicateParallelism: *par, TraceDir: *trace}
	if *paper {
		rc.Replicate = experiments.Paper()
	}
	rc.Progress = progressFunc(*prog, *debug)
	if *debug != "" {
		// The default mux already serves /debug/pprof/ (the blank pprof
		// import) and /debug/vars (expvar); the listener lives for the
		// whole process.
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: debugaddr:", err)
			}
		}()
	}
	var err error
	if rc.Sizes, err = parseInts(*sizes, "-sizes"); err != nil {
		return err
	}
	if rc.CrashFractions, err = parseFloats(*crash, "-crashfracs"); err != nil {
		return err
	}
	if rc.LossRates, err = parseFloats(*loss, "-lossrates"); err != nil {
		return err
	}
	if rc.HelloLossRates, err = parseFloats(*hello, "-hellorates"); err != nil {
		return err
	}
	if rc.RestartRates, err = parseFloats(*rrates, "-restartrates"); err != nil {
		return err
	}
	emit := func(f experiments.Figure) error {
		fmt.Println(experiments.Format(f))
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		name := filepath.Join(*svgDir, "figure-"+sanitize(f.ID)+".svg")
		out, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := render.Chart(out, f); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", name)
		return nil
	}
	if *scale {
		sc := experiments.ScaleConfig{Seed: *seed, Degree: *sdeg, Replicates: *sreps}
		if sc.Sizes, err = parseInts(*ssizes, "-scalesizes"); err != nil {
			return err
		}
		// -parallel keeps its figure-sweep meaning (replicates measured
		// concurrently); left at its default the scale sweep uses every
		// core, which is safe because results are schedule-independent.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "parallel" {
				sc.Parallelism = *par
			}
		})
		return runScale(sc)
	}
	if *ext == "load" {
		// The saturation sweep measures traffic curves, not a paper figure,
		// so it has its own row type and streaming output (like -scale).
		lc := experiments.LoadConfig{Seed: *seed, Replicates: *lreps, Parallelism: *par}
		if lc.Rates, err = parseFloats(*lrates, "-loadrates"); err != nil {
			return err
		}
		return runLoad(lc)
	}
	if *ext != "" {
		f, err := experiments.ExtensionByID(*ext, rc)
		if err != nil {
			return err
		}
		return emit(f)
	}
	ids := []string{*fig}
	if *all {
		ids = experiments.AllFigureIDs()
	} else if *fig == "" {
		fs.Usage()
		return fmt.Errorf("need -fig, -all, -ext, or -table1")
	}
	for _, id := range ids {
		f, err := experiments.FigureByID(id, rc)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	return nil
}

// progressEvery throttles -progress output to one line per this many
// replicates per data point (the converged/exhausted line always prints).
const progressEvery = 25

// progressFunc builds the replication-progress callback: stderr lines when
// print is set, live expvar counters when debugAddr is set, nil when
// neither. Data points are measured concurrently, so printing is serialized.
func progressFunc(print bool, debugAddr string) func(string, stats.ProgressUpdate) {
	var live *obsv.LiveCounters
	if debugAddr != "" {
		// Re-publishing panics, so reuse the var across run() invocations.
		if v, ok := expvar.Get("experiments").(*obsv.LiveCounters); ok {
			live = v
		} else {
			live = &obsv.LiveCounters{}
			expvar.Publish("experiments", live)
		}
	}
	if !print && live == nil {
		return nil
	}
	var mu sync.Mutex
	return func(point string, u stats.ProgressUpdate) {
		if live != nil {
			if u.Exhausted {
				live.PointExhausted()
			} else {
				live.AddReplicate()
				if u.Converged {
					live.PointConverged()
				}
			}
		}
		if !print || (!u.Converged && !u.Exhausted && u.Done%progressEvery != 0) {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		switch {
		case u.Converged:
			fmt.Fprintf(os.Stderr, "progress: %s: converged after %d replicates (rel-CI %.2f%%)\n",
				point, u.Done, 100*u.RelCI)
		case u.Exhausted:
			fmt.Fprintf(os.Stderr, "progress: %s: replication cap hit at %d replicates (rel-CI %.2f%%)\n",
				point, u.Done, 100*u.RelCI)
		default:
			fmt.Fprintf(os.Stderr, "progress: %s: %d replicates of ~%d estimated (rel-CI %.2f%%)\n",
				point, u.Done, u.EstTotal, 100*u.RelCI)
		}
	}
}

// runScale streams the large-n sweep: each point prints as soon as it
// completes, so the small sizes confirm the setup while the big ones run.
func runScale(sc experiments.ScaleConfig) error {
	lastN := -1
	sc.Emit = func(r experiments.ScaleRow) {
		if r.N != lastN {
			if lastN != -1 {
				fmt.Println()
			}
			fmt.Printf("n=%d (%d replicates)\n", r.N, r.Replicates)
			fmt.Printf("  %-16s %16s %16s %18s\n",
				"variant", "delivery %", "forward %", "latency (slots)")
			lastN = r.N
		}
		fmt.Println("  " + experiments.FormatScaleRow(r))
	}
	_, err := experiments.Scale(sc)
	return err
}

// runLoad streams the saturation sweep: each offered-load point prints as
// soon as it completes, light loads first, so the knee emerges live.
func runLoad(lc experiments.LoadConfig) error {
	lastRate := -1.0
	lc.Emit = func(r experiments.LoadRow) {
		if r.Rate != lastRate {
			if lastRate != -1 {
				fmt.Println()
			}
			fmt.Printf("offered load %.3f sessions/slot (%d replicates)\n", r.Rate, r.Replicates)
			fmt.Printf("  %-18s %16s %15s %14s %14s %14s\n",
				"variant", "throughput", "delivery %", "p50 (slots)", "p99 (slots)", "qdrops/sess")
			lastRate = r.Rate
		}
		fmt.Println("  " + experiments.FormatLoadRow(r))
	}
	_, err := experiments.Load(lc)
	return err
}

// validateWritableDir creates dir if needed and proves it writable by
// creating and removing a probe file.
func validateWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	probe, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// parseInts parses a comma-separated int list; "" yields nil (defaults).
func parseInts(s, flagName string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, tok, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list; "" yields nil (defaults).
func parseFloats(s, flagName string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		var x float64
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &x); err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, tok, err)
		}
		out = append(out, x)
	}
	return out, nil
}

// sanitize keeps figure ids filesystem-safe.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, id)
}
