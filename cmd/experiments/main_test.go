package main

import "testing"

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-table1"}); err != nil {
		t.Fatalf("run -table1: %v", err)
	}
}

func TestRunFigureTiny(t *testing.T) {
	if err := run([]string{"-fig", "16", "-sizes", "20"}); err != nil {
		t.Fatalf("run -fig 16: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown figure", args: []string{"-fig", "99"}},
		{name: "unknown extension", args: []string{"-ext", "bogus"}},
		{name: "bad sizes", args: []string{"-fig", "10", "-sizes", "abc"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}
