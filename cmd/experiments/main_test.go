package main

import (
	"os"
	"path/filepath"
	"testing"

	"adhocbcast/internal/obsv"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-table1"}); err != nil {
		t.Fatalf("run -table1: %v", err)
	}
}

func TestRunFigureTiny(t *testing.T) {
	if err := run([]string{"-fig", "16", "-sizes", "20"}); err != nil {
		t.Fatalf("run -fig 16: %v", err)
	}
}

// TestRunTraceDirAndProgress drives the new observability flags end to end:
// -tracedir must leave parseable obsv/v1 JSONL files behind and -progress
// must not perturb the run.
func TestRunTraceDirAndProgress(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "16", "-sizes", "20", "-tracedir", dir, "-progress", "-parallel", "2"}); err != nil {
		t.Fatalf("run with -tracedir: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("-tracedir produced no JSONL files")
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := obsv.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty trace file", name)
		}
	}
}

// TestRunScaleTiny drives the -scale mode end to end on toy sizes.
func TestRunScaleTiny(t *testing.T) {
	if err := run([]string{"-scale", "-scalesizes", "40,60", "-scaledegree", "8", "-scalereps", "2"}); err != nil {
		t.Fatalf("run -scale: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown figure", args: []string{"-fig", "99"}},
		{name: "unknown extension", args: []string{"-ext", "bogus"}},
		{name: "bad sizes", args: []string{"-fig", "10", "-sizes", "abc"}},
		{name: "bad scale sizes", args: []string{"-scale", "-scalesizes", "abc"}},
		{name: "infeasible scale degree", args: []string{"-scale", "-scalesizes", "200", "-scaledegree", "2", "-scalereps", "1"}},
		{name: "bad flag", args: []string{"-nope"}},
		{name: "unwritable tracedir", args: []string{"-fig", "16", "-sizes", "20", "-tracedir", "/dev/null/traces"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}
