package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adhocbcast/internal/obsv"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-table1"}); err != nil {
		t.Fatalf("run -table1: %v", err)
	}
}

func TestRunFigureTiny(t *testing.T) {
	if err := run([]string{"-fig", "16", "-sizes", "20"}); err != nil {
		t.Fatalf("run -fig 16: %v", err)
	}
}

// TestRunTraceDirAndProgress drives the new observability flags end to end:
// -tracedir must leave parseable obsv/v1 JSONL files behind and -progress
// must not perturb the run.
func TestRunTraceDirAndProgress(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "16", "-sizes", "20", "-tracedir", dir, "-progress", "-parallel", "2"}); err != nil {
		t.Fatalf("run with -tracedir: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("-tracedir produced no JSONL files")
	}
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := obsv.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty trace file", name)
		}
	}
}

// TestTraceDirValidatedUpFront: an unusable -tracedir must abort before any
// sweeping starts — here in front of the full -all -paper workload, which
// would take minutes if validation were deferred to the first export.
func TestTraceDirValidatedUpFront(t *testing.T) {
	start := time.Now()
	err := run([]string{"-all", "-paper", "-tracedir", "/dev/null/traces"})
	if err == nil {
		t.Fatal("run with unusable -tracedir succeeded")
	}
	if !strings.Contains(err.Error(), "-tracedir") {
		t.Errorf("error does not name the flag: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("validation took %v: not up-front", elapsed)
	}
}

func TestValidateWritableDir(t *testing.T) {
	nested := filepath.Join(t.TempDir(), "a", "b")
	if err := validateWritableDir(nested); err != nil {
		t.Fatalf("fresh nested dir: %v", err)
	}
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Fatalf("directory not created: %v %v", fi, err)
	}
	entries, err := os.ReadDir(nested)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("probe file left behind: %v", entries)
	}
}

// TestRunScaleTiny drives the -scale mode end to end on toy sizes.
func TestRunScaleTiny(t *testing.T) {
	if err := run([]string{"-scale", "-scalesizes", "40,60", "-scaledegree", "8", "-scalereps", "2"}); err != nil {
		t.Fatalf("run -scale: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no action", args: nil},
		{name: "unknown figure", args: []string{"-fig", "99"}},
		{name: "unknown extension", args: []string{"-ext", "bogus"}},
		{name: "bad sizes", args: []string{"-fig", "10", "-sizes", "abc"}},
		{name: "bad scale sizes", args: []string{"-scale", "-scalesizes", "abc"}},
		{name: "infeasible scale degree", args: []string{"-scale", "-scalesizes", "200", "-scaledegree", "2", "-scalereps", "1"}},
		{name: "bad flag", args: []string{"-nope"}},
		{name: "unwritable tracedir", args: []string{"-fig", "16", "-sizes", "20", "-tracedir", "/dev/null/traces"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}
