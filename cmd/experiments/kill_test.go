package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestKilledSweepLeavesNoPartialTrace is the regression test for the trace
// export's atomicity: a sweep killed (SIGKILL, no cleanup) mid-point must not
// leave a partial .jsonl file that a later reader would mistake for a
// complete export. The test re-executes its own binary as a helper running a
// long traced sweep, kills it as soon as the first in-progress temp file
// appears, and asserts the trace directory holds no final files — only
// ".tmp-*" debris, which readers ignore.
func TestKilledSweepLeavesNoPartialTrace(t *testing.T) {
	if dir := os.Getenv("EXPERIMENTS_KILL_HELPER_DIR"); dir != "" {
		// Helper process: a paper-criterion sweep at n=100 keeps every
		// point busy for seconds, so the parent's kill lands mid-point.
		run([]string{"-fig", "10", "-sizes", "100", "-paper", "-tracedir", dir})
		os.Exit(0)
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestKilledSweepLeavesNoPartialTrace$")
	cmd.Env = append(os.Environ(), "EXPERIMENTS_KILL_HELPER_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Wait for the sweep to open its first in-progress temp file.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if hasEntry(t, dir, func(name string) bool { return strings.HasPrefix(name, ".tmp-") }) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("helper never opened a trace temp file")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".jsonl") && !strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("killed sweep left final trace file %q", e.Name())
		}
	}
}

func hasEntry(t *testing.T, dir string, match func(string) bool) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if match(e.Name()) {
			return true
		}
	}
	return false
}
