// Package adhocbcast is a from-scratch Go reproduction of Wu and Dai's
// "A Generic Distributed Broadcast Scheme in Ad Hoc Wireless Networks"
// (ICDCS 2003).
//
// The library implements the paper's generic broadcast framework — the
// coverage condition deciding when a node may stay silent during a network-
// wide broadcast — together with every substrate the evaluation needs: a
// unit disk graph workload generator, k-hop local views with the
// visited/designated/un-visited priority hierarchy, a collision-free
// discrete-event broadcast simulator, the nine published special-case
// protocols the paper analyzes, the new generic/hybrid algorithms it
// derives, and the statistics harness that replicates every experiment until
// its confidence interval is tight.
//
// Layout:
//
//	internal/graph       graph substrate (adjacency, BFS, k-hop views)
//	internal/geo         random unit disk graph workloads (Section 7)
//	internal/view        views, statuses and priority metrics (Sections 2, 4)
//	internal/core        coverage conditions and MAX_MIN (Sections 3, 6)
//	internal/sim         discrete-event broadcast simulator
//	internal/protocol    Algorithm 1 and all special cases (Sections 5, 6)
//	internal/stats       confidence-interval replication (Section 7)
//	internal/experiments one driver per evaluation figure (Section 7)
//	cmd/bcastsim         run a single broadcast, optionally rendered
//	cmd/experiments      regenerate Figures 10-16 and Table 1
//	examples/...         runnable walkthroughs of the public API
//
// The benchmarks in bench_test.go regenerate one data point per paper table
// and figure; EXPERIMENTS.md records paper-versus-measured results.
package adhocbcast
